#include "parser/lexer.h"

#include <cctype>

#include "base/strings.h"

namespace ordlog {

const char* TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kIdentifier:
      return "identifier";
    case TokenType::kVariable:
      return "variable";
    case TokenType::kInteger:
      return "integer";
    case TokenType::kLeftParen:
      return "'('";
    case TokenType::kRightParen:
      return "')'";
    case TokenType::kLeftBrace:
      return "'{'";
    case TokenType::kRightBrace:
      return "'}'";
    case TokenType::kComma:
      return "','";
    case TokenType::kPeriod:
      return "'.'";
    case TokenType::kImplies:
      return "':-'";
    case TokenType::kLess:
      return "'<'";
    case TokenType::kLessEq:
      return "'<='";
    case TokenType::kGreater:
      return "'>'";
    case TokenType::kGreaterEq:
      return "'>='";
    case TokenType::kEquals:
      return "'='";
    case TokenType::kNotEquals:
      return "'!='";
    case TokenType::kPlus:
      return "'+'";
    case TokenType::kMinus:
      return "'-'";
    case TokenType::kStar:
      return "'*'";
    case TokenType::kEndOfInput:
      return "end of input";
  }
  return "?";
}

namespace {

bool IsIdentifierStart(char c) { return std::islower(static_cast<unsigned char>(c)); }
bool IsVariableStart(char c) {
  return std::isupper(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(std::string_view source) {
  std::vector<Token> tokens;
  int line = 1;
  int column = 1;
  size_t i = 0;

  auto advance = [&](size_t count) {
    for (size_t k = 0; k < count; ++k) {
      if (source[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };
  auto make = [&](TokenType type) {
    Token token;
    token.type = type;
    token.line = line;
    token.column = column;
    return token;
  };

  while (i < source.size()) {
    const char c = source[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '%') {
      while (i < source.size() && source[i] != '\n') advance(1);
      continue;
    }
    if (IsIdentifierStart(c) || IsVariableStart(c)) {
      Token token = make(IsIdentifierStart(c) ? TokenType::kIdentifier
                                              : TokenType::kVariable);
      size_t end = i;
      while (end < source.size() && IsNameChar(source[end])) ++end;
      token.text = std::string(source.substr(i, end - i));
      advance(end - i);
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      Token token = make(TokenType::kInteger);
      size_t end = i;
      int64_t value = 0;
      while (end < source.size() &&
             std::isdigit(static_cast<unsigned char>(source[end]))) {
        value = value * 10 + (source[end] - '0');
        ++end;
      }
      token.int_value = value;
      advance(end - i);
      tokens.push_back(std::move(token));
      continue;
    }
    switch (c) {
      case '(':
        tokens.push_back(make(TokenType::kLeftParen));
        advance(1);
        continue;
      case ')':
        tokens.push_back(make(TokenType::kRightParen));
        advance(1);
        continue;
      case '{':
        tokens.push_back(make(TokenType::kLeftBrace));
        advance(1);
        continue;
      case '}':
        tokens.push_back(make(TokenType::kRightBrace));
        advance(1);
        continue;
      case ',':
        tokens.push_back(make(TokenType::kComma));
        advance(1);
        continue;
      case '.':
        tokens.push_back(make(TokenType::kPeriod));
        advance(1);
        continue;
      case '+':
        tokens.push_back(make(TokenType::kPlus));
        advance(1);
        continue;
      case '-':
        tokens.push_back(make(TokenType::kMinus));
        advance(1);
        continue;
      case '*':
        tokens.push_back(make(TokenType::kStar));
        advance(1);
        continue;
      case ':':
        if (i + 1 < source.size() && source[i + 1] == '-') {
          tokens.push_back(make(TokenType::kImplies));
          advance(2);
          continue;
        }
        return InvalidArgumentError(
            StrCat("lex error at ", line, ":", column, ": expected ':-'"));
      case '<':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          tokens.push_back(make(TokenType::kLessEq));
          advance(2);
        } else {
          tokens.push_back(make(TokenType::kLess));
          advance(1);
        }
        continue;
      case '>':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          tokens.push_back(make(TokenType::kGreaterEq));
          advance(2);
        } else {
          tokens.push_back(make(TokenType::kGreater));
          advance(1);
        }
        continue;
      case '=':
        tokens.push_back(make(TokenType::kEquals));
        advance(1);
        continue;
      case '!':
        if (i + 1 < source.size() && source[i + 1] == '=') {
          tokens.push_back(make(TokenType::kNotEquals));
          advance(2);
          continue;
        }
        return InvalidArgumentError(
            StrCat("lex error at ", line, ":", column, ": expected '!='"));
      default:
        return InvalidArgumentError(StrCat("lex error at ", line, ":", column,
                                           ": unexpected character '", c,
                                           "'"));
    }
  }
  tokens.push_back(Token{TokenType::kEndOfInput, "", 0, line, column});
  return tokens;
}

}  // namespace ordlog
