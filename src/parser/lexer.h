#ifndef ORDLOG_PARSER_LEXER_H_
#define ORDLOG_PARSER_LEXER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"

namespace ordlog {

enum class TokenType : uint8_t {
  kIdentifier,  // lowercase-initial: predicate, constant, functor, keyword
  kVariable,    // uppercase- or underscore-initial
  kInteger,
  kLeftParen,    // (
  kRightParen,   // )
  kLeftBrace,    // {
  kRightBrace,   // }
  kComma,        // ,
  kPeriod,       // .
  kImplies,      // :-
  kLess,         // <
  kLessEq,       // <=
  kGreater,      // >
  kGreaterEq,    // >=
  kEquals,       // =
  kNotEquals,    // !=
  kPlus,         // +
  kMinus,        // -
  kStar,         // *
  kEndOfInput,
};

// Returns a human-readable token-type name for diagnostics.
const char* TokenTypeToString(TokenType type);

struct Token {
  TokenType type = TokenType::kEndOfInput;
  std::string text;        // identifier/variable spelling
  int64_t int_value = 0;   // integer payload
  int line = 1;            // 1-based
  int column = 1;          // 1-based
};

// Tokenizes `.olp` source. `%` starts a line comment. Fails with
// kInvalidArgument (including line:column) on unexpected characters.
StatusOr<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace ordlog

#endif  // ORDLOG_PARSER_LEXER_H_
