#include "parser/parser.h"

#include <vector>

#include "base/strings.h"
#include "parser/lexer.h"

namespace ordlog {
namespace {

// Recursive-descent parser over the token stream. Methods return Status /
// StatusOr and never throw; the first error aborts the parse.
class ParserImpl {
 public:
  ParserImpl(std::vector<Token> tokens, TermPool& pool)
      : tokens_(std::move(tokens)), pool_(pool) {}

  // --- token plumbing -----------------------------------------------------

  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType type) const { return Peek().type == type; }
  bool Match(TokenType type) {
    if (!Check(type)) return false;
    Advance();
    return true;
  }

  Status ErrorAt(const Token& token, std::string_view message) const {
    return InvalidArgumentError(StrCat("parse error at ", token.line, ":",
                                       token.column, ": ", message));
  }

  Status Expect(TokenType type, std::string_view context) {
    if (Match(type)) return Status::Ok();
    return ErrorAt(Peek(), StrCat("expected ", TokenTypeToString(type), " ",
                                  context, ", found ",
                                  TokenTypeToString(Peek().type)));
  }

  bool IsKeyword(std::string_view keyword) const {
    return Check(TokenType::kIdentifier) && Peek().text == keyword;
  }

  // --- grammar ------------------------------------------------------------

  Status ParseInto(OrderedProgram& program) {
    while (!Check(TokenType::kEndOfInput)) {
      if (IsKeyword("component")) {
        ORDLOG_RETURN_IF_ERROR(ParseComponentDecl(program));
      } else if (IsKeyword("order")) {
        ORDLOG_RETURN_IF_ERROR(ParseOrderDecl(program));
      } else {
        ORDLOG_ASSIGN_OR_RETURN(Rule rule, ParseRuleItem());
        ORDLOG_ASSIGN_OR_RETURN(const ComponentId main,
                                EnsureComponent(program, "main"));
        ORDLOG_RETURN_IF_ERROR(program.AddRule(main, std::move(rule)));
      }
    }
    return Status::Ok();
  }

  StatusOr<ComponentId> EnsureComponent(OrderedProgram& program,
                                        std::string_view name) {
    auto found = program.FindComponent(name);
    if (found.ok()) return found.value();
    return program.AddComponent(std::string(name));
  }

  Status ParseComponentDecl(OrderedProgram& program) {
    Advance();  // "component"
    if (!Check(TokenType::kIdentifier)) {
      return ErrorAt(Peek(), "expected component name");
    }
    const std::string name = Advance().text;
    ORDLOG_ASSIGN_OR_RETURN(const ComponentId id,
                            EnsureComponent(program, name));
    ORDLOG_RETURN_IF_ERROR(
        Expect(TokenType::kLeftBrace, "after component name"));
    while (!Check(TokenType::kRightBrace)) {
      if (Check(TokenType::kEndOfInput)) {
        return ErrorAt(Peek(), StrCat("unterminated component '", name, "'"));
      }
      ORDLOG_ASSIGN_OR_RETURN(Rule rule, ParseRuleItem());
      ORDLOG_RETURN_IF_ERROR(program.AddRule(id, std::move(rule)));
    }
    Advance();  // '}'
    return Status::Ok();
  }

  Status ParseOrderDecl(OrderedProgram& program) {
    Advance();  // "order"
    if (!Check(TokenType::kIdentifier)) {
      return ErrorAt(Peek(), "expected component name after 'order'");
    }
    ORDLOG_ASSIGN_OR_RETURN(ComponentId previous,
                            EnsureComponent(program, Advance().text));
    if (!Check(TokenType::kLess)) {
      return ErrorAt(Peek(), "expected '<' in order declaration");
    }
    while (Match(TokenType::kLess)) {
      if (!Check(TokenType::kIdentifier)) {
        return ErrorAt(Peek(), "expected component name after '<'");
      }
      ORDLOG_ASSIGN_OR_RETURN(const ComponentId next,
                              EnsureComponent(program, Advance().text));
      ORDLOG_RETURN_IF_ERROR(program.AddOrder(previous, next));
      previous = next;
    }
    return Expect(TokenType::kPeriod, "at end of order declaration");
  }

  StatusOr<Rule> ParseRuleItem() {
    ORDLOG_ASSIGN_OR_RETURN(Rule rule, ParseRuleBody());
    ORDLOG_RETURN_IF_ERROR(Expect(TokenType::kPeriod, "at end of rule"));
    return rule;
  }

  // Parses a rule without the trailing period requirement handled by the
  // caller variants.
  StatusOr<Rule> ParseRuleBody() {
    Rule rule;
    ORDLOG_ASSIGN_OR_RETURN(rule.head, ParseLiteralElem());
    if (Match(TokenType::kImplies)) {
      while (true) {
        if (StartsLiteral()) {
          ORDLOG_ASSIGN_OR_RETURN(Literal literal, ParseLiteralElem());
          rule.body.push_back(std::move(literal));
        } else {
          ORDLOG_ASSIGN_OR_RETURN(Comparison comparison, ParseComparison());
          rule.constraints.push_back(std::move(comparison));
        }
        if (!Match(TokenType::kComma)) break;
      }
    }
    return rule;
  }

  static bool IsComparisonOp(TokenType type) {
    switch (type) {
      case TokenType::kLess:
      case TokenType::kLessEq:
      case TokenType::kGreater:
      case TokenType::kGreaterEq:
      case TokenType::kEquals:
      case TokenType::kNotEquals:
        return true;
      default:
        return false;
    }
  }

  // A body element is a literal when it starts with an identifier or with
  // '-' followed by an identifier; otherwise it is a comparison. A bare
  // identifier directly followed by a comparison operator (e.g.
  // `red != X`) is a term comparison, not a 0-ary atom.
  bool StartsLiteral() const {
    if (Check(TokenType::kIdentifier)) {
      return !IsComparisonOp(Peek(1).type);
    }
    return Check(TokenType::kMinus) &&
           Peek(1).type == TokenType::kIdentifier;
  }

  StatusOr<Literal> ParseLiteralElem() {
    bool positive = true;
    if (Match(TokenType::kMinus)) positive = false;
    if (!Check(TokenType::kIdentifier)) {
      return StatusOr<Literal>(
          ErrorAt(Peek(), "expected predicate name"));
    }
    const std::string predicate = Advance().text;
    Atom atom;
    atom.predicate = pool_.symbols().Intern(predicate);
    if (Match(TokenType::kLeftParen)) {
      while (true) {
        ORDLOG_ASSIGN_OR_RETURN(const TermId term, ParseTerm());
        atom.args.push_back(term);
        if (!Match(TokenType::kComma)) break;
      }
      ORDLOG_RETURN_IF_ERROR(
          Expect(TokenType::kRightParen, "after atom arguments"));
    }
    return Literal{std::move(atom), positive};
  }

  StatusOr<TermId> ParseTerm() {
    if (Check(TokenType::kVariable)) {
      return pool_.MakeVariable(Advance().text);
    }
    if (Check(TokenType::kInteger)) {
      return pool_.MakeInteger(Advance().int_value);
    }
    if (Check(TokenType::kMinus) && Peek(1).type == TokenType::kInteger) {
      Advance();
      return pool_.MakeInteger(-Advance().int_value);
    }
    if (Check(TokenType::kIdentifier)) {
      const std::string name = Advance().text;
      if (Match(TokenType::kLeftParen)) {
        std::vector<TermId> args;
        while (true) {
          ORDLOG_ASSIGN_OR_RETURN(const TermId term, ParseTerm());
          args.push_back(term);
          if (!Match(TokenType::kComma)) break;
        }
        ORDLOG_RETURN_IF_ERROR(
            Expect(TokenType::kRightParen, "after function arguments"));
        return pool_.MakeFunction(name, std::move(args));
      }
      return pool_.MakeConstant(name);
    }
    return StatusOr<TermId>(ErrorAt(Peek(), "expected term"));
  }

  StatusOr<Comparison> ParseComparison() {
    Comparison comparison;
    ORDLOG_ASSIGN_OR_RETURN(comparison.lhs, ParseArith());
    switch (Peek().type) {
      case TokenType::kLess:
        comparison.op = CompareOp::kLt;
        break;
      case TokenType::kLessEq:
        comparison.op = CompareOp::kLe;
        break;
      case TokenType::kGreater:
        comparison.op = CompareOp::kGt;
        break;
      case TokenType::kGreaterEq:
        comparison.op = CompareOp::kGe;
        break;
      case TokenType::kEquals:
        comparison.op = CompareOp::kEq;
        break;
      case TokenType::kNotEquals:
        comparison.op = CompareOp::kNe;
        break;
      default:
        return StatusOr<Comparison>(
            ErrorAt(Peek(), "expected comparison operator"));
    }
    Advance();
    ORDLOG_ASSIGN_OR_RETURN(comparison.rhs, ParseArith());
    return comparison;
  }

  StatusOr<ArithExpr> ParseArith() {
    ORDLOG_ASSIGN_OR_RETURN(ArithExpr lhs, ParseMul());
    while (Check(TokenType::kPlus) || Check(TokenType::kMinus)) {
      const bool add = Advance().type == TokenType::kPlus;
      ORDLOG_ASSIGN_OR_RETURN(ArithExpr rhs, ParseMul());
      lhs = add ? ArithExpr::Add(std::move(lhs), std::move(rhs))
                : ArithExpr::Subtract(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ArithExpr> ParseMul() {
    ORDLOG_ASSIGN_OR_RETURN(ArithExpr lhs, ParseUnary());
    while (Match(TokenType::kStar)) {
      ORDLOG_ASSIGN_OR_RETURN(ArithExpr rhs, ParseUnary());
      lhs = ArithExpr::Multiply(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ArithExpr> ParseUnary() {
    if (Match(TokenType::kMinus)) {
      ORDLOG_ASSIGN_OR_RETURN(ArithExpr operand, ParseUnary());
      return ArithExpr::Negate(std::move(operand));
    }
    if (Check(TokenType::kInteger)) {
      return ArithExpr::Constant(Advance().int_value);
    }
    if (Check(TokenType::kVariable)) {
      return ArithExpr::Variable(pool_.symbols().Intern(Advance().text));
    }
    if (Check(TokenType::kIdentifier)) {
      // A symbolic term operand (constant or function term); only
      // meaningful under `=` / `!=`.
      ORDLOG_ASSIGN_OR_RETURN(const TermId term, ParseTerm());
      return ArithExpr::Term(term);
    }
    if (Match(TokenType::kLeftParen)) {
      ORDLOG_ASSIGN_OR_RETURN(ArithExpr inner, ParseArith());
      ORDLOG_RETURN_IF_ERROR(
          Expect(TokenType::kRightParen, "after parenthesized expression"));
      return inner;
    }
    return StatusOr<ArithExpr>(
        ErrorAt(Peek(), "expected integer, variable or '('"));
  }

  Status ExpectEnd() {
    if (Check(TokenType::kEndOfInput)) return Status::Ok();
    return ErrorAt(Peek(), "unexpected trailing input");
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  TermPool& pool_;
};

}  // namespace

StatusOr<OrderedProgram> ParseProgram(std::string_view source) {
  return ParseProgram(source, std::make_shared<TermPool>());
}

StatusOr<OrderedProgram> ParseProgram(std::string_view source,
                                      std::shared_ptr<TermPool> pool) {
  ORDLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  OrderedProgram program(pool);
  ParserImpl parser(std::move(tokens), *pool);
  ORDLOG_RETURN_IF_ERROR(parser.ParseInto(program));
  ORDLOG_RETURN_IF_ERROR(program.Finalize());
  return program;
}

StatusOr<Rule> ParseRule(std::string_view source, TermPool& pool) {
  ORDLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  ParserImpl parser(std::move(tokens), pool);
  ORDLOG_ASSIGN_OR_RETURN(Rule rule, parser.ParseRuleBody());
  parser.Match(TokenType::kPeriod);  // trailing '.' optional here
  ORDLOG_RETURN_IF_ERROR(parser.ExpectEnd());
  return rule;
}

StatusOr<Literal> ParseLiteral(std::string_view source, TermPool& pool) {
  ORDLOG_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  ParserImpl parser(std::move(tokens), pool);
  ORDLOG_ASSIGN_OR_RETURN(Literal literal, parser.ParseLiteralElem());
  parser.Match(TokenType::kPeriod);
  ORDLOG_RETURN_IF_ERROR(parser.ExpectEnd());
  return literal;
}

}  // namespace ordlog
