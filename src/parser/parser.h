#ifndef ORDLOG_PARSER_PARSER_H_
#define ORDLOG_PARSER_PARSER_H_

#include <memory>
#include <string_view>

#include "base/status.h"
#include "lang/program.h"

namespace ordlog {

// Parses `.olp` source into an OrderedProgram. Grammar:
//
//   program        := item*
//   item           := component_decl | order_decl | rule
//   component_decl := "component" IDENT "{" rule* "}"
//   order_decl     := "order" IDENT ("<" IDENT)+ "."
//   rule           := literal (":-" body_elem ("," body_elem)*)? "."
//   body_elem      := literal | comparison
//   literal        := "-"? atom
//   atom           := IDENT ("(" term ("," term)* ")")?
//   term           := VARIABLE | INT | "-" INT | IDENT ("(" term,* ")")?
//   comparison     := arith ("<"|"<="|">"|">="|"="|"!=") arith
//   arith          := mul (("+"|"-") mul)*
//   mul            := unary ("*" unary)*
//   unary          := "-" unary | INT | VARIABLE | "(" arith ")"
//
// Rules outside any `component` block go to an implicit component named
// "main". Components referenced by `order` before their declaration are
// created empty (the paper's Fig. 3 `myself` component starts empty).
// `%` starts a line comment. All errors carry line:column positions.
//
// The returned program is already Finalize()d (so order cycles are
// rejected here).
StatusOr<OrderedProgram> ParseProgram(std::string_view source);

// Same, but interning into a caller-provided pool.
StatusOr<OrderedProgram> ParseProgram(std::string_view source,
                                      std::shared_ptr<TermPool> pool);

// Parses a single rule, e.g. "fly(X) :- bird(X)." (trailing '.' optional).
StatusOr<Rule> ParseRule(std::string_view source, TermPool& pool);

// Parses a single literal, e.g. "-fly(penguin)".
StatusOr<Literal> ParseLiteral(std::string_view source, TermPool& pool);

}  // namespace ordlog

#endif  // ORDLOG_PARSER_PARSER_H_
