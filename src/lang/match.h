#ifndef ORDLOG_LANG_MATCH_H_
#define ORDLOG_LANG_MATCH_H_

#include <optional>

#include "lang/atom.h"

namespace ordlog {

// One-way pattern matching: extends `binding` so that pattern[binding] ==
// ground. `ground` must be a ground term/atom; pattern variables already
// bound must match consistently. Returns false (leaving `binding` in a
// partially extended state) on mismatch — pass a copy when that matters.
bool MatchTerm(const TermPool& pool, TermId pattern, TermId ground,
               Binding& binding);

// Matches an atom pattern (same predicate, same arity, arguments match).
// On success returns the extended binding; nullopt otherwise.
std::optional<Binding> MatchAtom(const TermPool& pool, const Atom& pattern,
                                 const Atom& ground,
                                 const Binding& binding = {});

}  // namespace ordlog

#endif  // ORDLOG_LANG_MATCH_H_
