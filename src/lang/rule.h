#ifndef ORDLOG_LANG_RULE_H_
#define ORDLOG_LANG_RULE_H_

#include <vector>

#include "lang/arith.h"
#include "lang/atom.h"

namespace ordlog {

// A rule `head :- body, constraints.` The head may be a negative literal
// (the paper's "negative rule"); a rule with positive head is
// "seminegative"; one with all-positive literals is "positive" (Horn).
// A rule with empty body and no constraints is a fact.
struct Rule {
  Literal head;
  std::vector<Literal> body;
  std::vector<Comparison> constraints;

  bool operator==(const Rule& other) const = default;

  bool IsFact() const { return body.empty() && constraints.empty(); }

  // Paper terminology (Section 2): head is positive.
  bool IsSeminegative() const { return head.positive; }

  // Paper terminology: head and all body literals are positive (Horn).
  bool IsPositive() const;

  bool IsGround(const TermPool& pool) const;

  // All distinct variables of head, body and constraints, in
  // first-occurrence order.
  std::vector<SymbolId> Variables(const TermPool& pool) const;
};

// Convenience constructors used by tests and examples.
Rule MakeFact(Literal head);
Rule MakeRule(Literal head, std::vector<Literal> body,
              std::vector<Comparison> constraints = {});

}  // namespace ordlog

#endif  // ORDLOG_LANG_RULE_H_
