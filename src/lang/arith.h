#ifndef ORDLOG_LANG_ARITH_H_
#define ORDLOG_LANG_ARITH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "lang/term.h"

namespace ordlog {

// Node kinds of an integer arithmetic expression appearing in a rule's
// comparison constraints, e.g. `X > Y + 2` in the paper's loan program.
enum class ArithOp : uint8_t {
  kConstant,
  kVariable,
  kTerm,  // an embedded (possibly symbolic) term, e.g. `red` in `X != red`
  kAdd,
  kSubtract,
  kMultiply,
  kNegate,
};

// An integer-valued arithmetic expression over rule variables. Value type;
// copyable; evaluated against a grounding substitution.
class ArithExpr {
 public:
  static ArithExpr Constant(int64_t value);
  static ArithExpr Variable(SymbolId name);
  static ArithExpr Term(TermId term);
  static ArithExpr Add(ArithExpr lhs, ArithExpr rhs);
  static ArithExpr Subtract(ArithExpr lhs, ArithExpr rhs);
  static ArithExpr Multiply(ArithExpr lhs, ArithExpr rhs);
  static ArithExpr Negate(ArithExpr operand);

  ArithOp op() const { return op_; }
  int64_t constant() const { return constant_; }
  SymbolId variable() const { return variable_; }
  TermId term() const { return term_; }
  const ArithExpr& left() const { return children_[0]; }
  const ArithExpr& right() const { return children_[1]; }
  const ArithExpr& operand() const { return children_[0]; }

  bool operator==(const ArithExpr& other) const;

  // True for expressions that denote a term rather than a computation: a
  // bare variable, an embedded term, or an integer literal. `=` and `!=`
  // compare such operands by term identity, which works for symbolic
  // constants (`X != red`) and degrades gracefully across types
  // (`k0 != 3` is simply true). Composite arithmetic (`X = 1 + 2`) stays
  // in the integer domain.
  bool IsTermLike() const {
    return op_ == ArithOp::kVariable || op_ == ArithOp::kTerm ||
           op_ == ArithOp::kConstant;
  }

  // Appends the variables occurring in the expression to `out` in
  // first-occurrence order, skipping duplicates already present.
  void CollectVariables(const TermPool& pool,
                        std::vector<SymbolId>* out) const;

  // Evaluates under `binding` as an integer. Every variable must be bound
  // to an integer term; an embedded term must be (or substitute to) an
  // integer term; otherwise kInvalidArgument.
  StatusOr<int64_t> Evaluate(const TermPool& pool,
                             const Binding& binding) const;

  // Resolves a term-like expression to the (ground) term it denotes under
  // `binding`. kFailedPrecondition for computational expressions.
  StatusOr<TermId> ResolveTerm(TermPool& pool, const Binding& binding) const;

  // Renders in source syntax with minimal parenthesization.
  std::string ToString(const TermPool& pool) const;

 private:
  ArithExpr() = default;

  ArithOp op_ = ArithOp::kConstant;
  int64_t constant_ = 0;
  SymbolId variable_ = 0;
  TermId term_ = 0;
  std::vector<ArithExpr> children_;
};

enum class CompareOp : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

// Renders "<", "<=", ">", ">=", "=", "!=".
const char* CompareOpToString(CompareOp op);

// A comparison constraint `lhs op rhs` in a rule body. Constraints are not
// literals: they do not appear in interpretations; the grounder evaluates
// them and drops ground instances whose constraints fail (or cannot be
// evaluated, e.g. an ordering comparison over symbolic constants).
//
// `=` and `!=` with two term-like operands compare by term identity
// (covering symbolic constants, as in Example 9's `X != Y` over colors);
// all other cases evaluate both sides as integers.
struct Comparison {
  CompareOp op = CompareOp::kEq;
  ArithExpr lhs = ArithExpr::Constant(0);
  ArithExpr rhs = ArithExpr::Constant(0);

  bool operator==(const Comparison& other) const = default;

  void CollectVariables(const TermPool& pool,
                        std::vector<SymbolId>* out) const;
  StatusOr<bool> Evaluate(TermPool& pool, const Binding& binding) const;
  std::string ToString(const TermPool& pool) const;
};

}  // namespace ordlog

#endif  // ORDLOG_LANG_ARITH_H_
