#include "lang/arith.h"

#include <algorithm>

#include "base/logging.h"
#include "base/strings.h"

namespace ordlog {

ArithExpr ArithExpr::Constant(int64_t value) {
  ArithExpr expr;
  expr.op_ = ArithOp::kConstant;
  expr.constant_ = value;
  return expr;
}

ArithExpr ArithExpr::Variable(SymbolId name) {
  ArithExpr expr;
  expr.op_ = ArithOp::kVariable;
  expr.variable_ = name;
  return expr;
}

ArithExpr ArithExpr::Term(TermId term) {
  ArithExpr expr;
  expr.op_ = ArithOp::kTerm;
  expr.term_ = term;
  return expr;
}

ArithExpr ArithExpr::Add(ArithExpr lhs, ArithExpr rhs) {
  ArithExpr expr;
  expr.op_ = ArithOp::kAdd;
  expr.children_.push_back(std::move(lhs));
  expr.children_.push_back(std::move(rhs));
  return expr;
}
ArithExpr ArithExpr::Subtract(ArithExpr lhs, ArithExpr rhs) {
  ArithExpr expr;
  expr.op_ = ArithOp::kSubtract;
  expr.children_.push_back(std::move(lhs));
  expr.children_.push_back(std::move(rhs));
  return expr;
}
ArithExpr ArithExpr::Multiply(ArithExpr lhs, ArithExpr rhs) {
  ArithExpr expr;
  expr.op_ = ArithOp::kMultiply;
  expr.children_.push_back(std::move(lhs));
  expr.children_.push_back(std::move(rhs));
  return expr;
}

ArithExpr ArithExpr::Negate(ArithExpr operand) {
  ArithExpr expr;
  expr.op_ = ArithOp::kNegate;
  expr.children_.push_back(std::move(operand));
  return expr;
}

bool ArithExpr::operator==(const ArithExpr& other) const {
  return op_ == other.op_ && constant_ == other.constant_ &&
         variable_ == other.variable_ && term_ == other.term_ &&
         children_ == other.children_;
}

void ArithExpr::CollectVariables(const TermPool& pool,
                                 std::vector<SymbolId>* out) const {
  switch (op_) {
    case ArithOp::kConstant:
      return;
    case ArithOp::kVariable:
      if (std::find(out->begin(), out->end(), variable_) == out->end()) {
        out->push_back(variable_);
      }
      return;
    case ArithOp::kTerm:
      pool.CollectVariables(term_, out);
      return;
    default:
      for (const ArithExpr& child : children_) {
        child.CollectVariables(pool, out);
      }
      return;
  }
}

StatusOr<int64_t> ArithExpr::Evaluate(const TermPool& pool,
                                      const Binding& binding) const {
  switch (op_) {
    case ArithOp::kConstant:
      return constant_;
    case ArithOp::kVariable: {
      auto it = binding.find(variable_);
      if (it == binding.end()) {
        return InvalidArgumentError(
            StrCat("unbound variable ", pool.symbols().Name(variable_),
                   " in arithmetic expression"));
      }
      if (pool.kind(it->second) != TermKind::kInteger) {
        return InvalidArgumentError(
            StrCat("variable ", pool.symbols().Name(variable_),
                   " bound to non-integer term ", pool.ToString(it->second),
                   " in arithmetic expression"));
      }
      return pool.int_value(it->second);
    }
    case ArithOp::kTerm: {
      // An embedded ground integer term evaluates to its value; a bound
      // variable inside the term is not supported arithmetically, and a
      // symbolic term is a type error in an arithmetic position.
      if (pool.kind(term_) == TermKind::kInteger) {
        return pool.int_value(term_);
      }
      return InvalidArgumentError(
          StrCat("term ", pool.ToString(term_),
                 " used in an arithmetic position"));
    }
    case ArithOp::kNegate: {
      ORDLOG_ASSIGN_OR_RETURN(const int64_t value,
                              children_[0].Evaluate(pool, binding));
      return -value;
    }
    case ArithOp::kAdd:
    case ArithOp::kSubtract:
    case ArithOp::kMultiply: {
      ORDLOG_ASSIGN_OR_RETURN(const int64_t lhs,
                              children_[0].Evaluate(pool, binding));
      ORDLOG_ASSIGN_OR_RETURN(const int64_t rhs,
                              children_[1].Evaluate(pool, binding));
      switch (op_) {
        case ArithOp::kAdd:
          return lhs + rhs;
        case ArithOp::kSubtract:
          return lhs - rhs;
        default:
          return lhs * rhs;
      }
    }
  }
  return InternalError("corrupt arithmetic expression");
}

StatusOr<TermId> ArithExpr::ResolveTerm(TermPool& pool,
                                        const Binding& binding) const {
  switch (op_) {
    case ArithOp::kVariable: {
      auto it = binding.find(variable_);
      if (it == binding.end()) {
        return InvalidArgumentError(
            StrCat("unbound variable ", pool.symbols().Name(variable_),
                   " in term comparison"));
      }
      return it->second;
    }
    case ArithOp::kTerm:
      return pool.Substitute(term_, binding);
    case ArithOp::kConstant:
      return pool.MakeInteger(constant_);
    default:
      return FailedPreconditionError(
          "arithmetic expression used in a term position");
  }
}

std::string ArithExpr::ToString(const TermPool& pool) const {
  switch (op_) {
    case ArithOp::kConstant:
      return std::to_string(constant_);
    case ArithOp::kVariable:
      return pool.symbols().Name(variable_);
    case ArithOp::kTerm:
      return pool.ToString(term_);
    case ArithOp::kNegate:
      return StrCat("-(", children_[0].ToString(pool), ")");
    case ArithOp::kAdd:
      return StrCat(children_[0].ToString(pool), " + ",
                    children_[1].ToString(pool));
    case ArithOp::kSubtract: {
      std::string rhs = children_[1].ToString(pool);
      if (children_[1].op_ == ArithOp::kAdd ||
          children_[1].op_ == ArithOp::kSubtract) {
        rhs = StrCat("(", rhs, ")");
      }
      return StrCat(children_[0].ToString(pool), " - ", rhs);
    }
    case ArithOp::kMultiply: {
      std::string lhs = children_[0].ToString(pool);
      std::string rhs = children_[1].ToString(pool);
      if (children_[0].op_ == ArithOp::kAdd ||
          children_[0].op_ == ArithOp::kSubtract) {
        lhs = StrCat("(", lhs, ")");
      }
      if (children_[1].op_ == ArithOp::kAdd ||
          children_[1].op_ == ArithOp::kSubtract) {
        rhs = StrCat("(", rhs, ")");
      }
      return StrCat(lhs, " * ", rhs);
    }
  }
  return "?";
}

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
  }
  return "?";
}

void Comparison::CollectVariables(const TermPool& pool,
                                  std::vector<SymbolId>* out) const {
  lhs.CollectVariables(pool, out);
  rhs.CollectVariables(pool, out);
}

StatusOr<bool> Comparison::Evaluate(TermPool& pool,
                                    const Binding& binding) const {
  // Term identity for (in)equality over term-like operands; this is what
  // lets `X != Y` range over symbolic constants. Hash-consing makes term
  // identity coincide with structural equality, including integers.
  if ((op == CompareOp::kEq || op == CompareOp::kNe) && lhs.IsTermLike() &&
      rhs.IsTermLike()) {
    ORDLOG_ASSIGN_OR_RETURN(const TermId left, lhs.ResolveTerm(pool, binding));
    ORDLOG_ASSIGN_OR_RETURN(const TermId right,
                            rhs.ResolveTerm(pool, binding));
    return op == CompareOp::kEq ? left == right : left != right;
  }
  ORDLOG_ASSIGN_OR_RETURN(const int64_t left, lhs.Evaluate(pool, binding));
  ORDLOG_ASSIGN_OR_RETURN(const int64_t right, rhs.Evaluate(pool, binding));
  switch (op) {
    case CompareOp::kLt:
      return left < right;
    case CompareOp::kLe:
      return left <= right;
    case CompareOp::kGt:
      return left > right;
    case CompareOp::kGe:
      return left >= right;
    case CompareOp::kEq:
      return left == right;
    case CompareOp::kNe:
      return left != right;
  }
  return InternalError("corrupt comparison op");
}

std::string Comparison::ToString(const TermPool& pool) const {
  return StrCat(lhs.ToString(pool), " ", CompareOpToString(op), " ",
                rhs.ToString(pool));
}

}  // namespace ordlog
