#include "lang/atom.h"

#include "base/hash.h"

namespace ordlog {

bool Atom::IsGround(const TermPool& pool) const {
  for (TermId arg : args) {
    if (!pool.IsGround(arg)) return false;
  }
  return true;
}

void Atom::CollectVariables(const TermPool& pool,
                            std::vector<SymbolId>* out) const {
  for (TermId arg : args) pool.CollectVariables(arg, out);
}

size_t AtomHash::operator()(const Atom& atom) const {
  size_t seed = 0;
  HashCombine(seed, atom.predicate);
  for (TermId arg : atom.args) HashCombine(seed, arg);
  return seed;
}

size_t LiteralHash::operator()(const Literal& literal) const {
  size_t seed = AtomHash{}(literal.atom);
  HashCombine(seed, literal.positive);
  return seed;
}

Atom MakeAtom(TermPool& pool, std::string_view predicate,
              std::vector<TermId> args) {
  return Atom{pool.symbols().Intern(predicate), std::move(args)};
}

Literal Pos(Atom atom) { return Literal{std::move(atom), true}; }
Literal Neg(Atom atom) { return Literal{std::move(atom), false}; }

}  // namespace ordlog
