#include "lang/analysis.h"

#include <algorithm>

#include "base/strings.h"

namespace ordlog {

std::string ProgramStats::ToString(const OrderedProgram& program) const {
  std::ostringstream os;
  os << "components: " << num_components << " (order edges "
     << num_order_edges << ", total order: "
     << (order_is_total ? "yes" : "no") << ")\n"
     << "rules: " << num_rules << " (" << num_facts << " facts, "
     << num_negative_heads << " negated heads, "
     << num_negative_body_literals << " negative body literals, "
     << num_constraints << " constraints)\n"
     << "predicates: " << num_predicates << "\n"
     << "class: "
     << (is_positive ? "positive"
                     : (is_seminegative ? "seminegative" : "negative"))
     << "\n";
  (void)program;
  return os.str();
}

ProgramStats AnalyzeProgram(const OrderedProgram& program) {
  ProgramStats stats;
  stats.num_components = program.NumComponents();
  stats.num_order_edges = program.order_edges().size();
  stats.is_positive = true;
  stats.is_seminegative = true;
  std::map<PredicateKey, bool> predicates;
  for (ComponentId c = 0; c < program.NumComponents(); ++c) {
    for (const Rule& rule : program.component(c).rules) {
      ++stats.num_rules;
      if (rule.IsFact()) ++stats.num_facts;
      if (!rule.head.positive) {
        ++stats.num_negative_heads;
        stats.is_positive = false;
        stats.is_seminegative = false;
      }
      predicates[{rule.head.atom.predicate, rule.head.atom.arity()}] = true;
      for (const Literal& literal : rule.body) {
        if (!literal.positive) {
          ++stats.num_negative_body_literals;
          stats.is_positive = false;
        }
        predicates[{literal.atom.predicate, literal.atom.arity()}] = true;
      }
      stats.num_constraints += rule.constraints.size();
    }
  }
  stats.num_predicates = predicates.size();
  if (program.finalized()) {
    stats.order_is_total = true;
    for (ComponentId a = 0; a < program.NumComponents(); ++a) {
      for (ComponentId b = a + 1; b < program.NumComponents(); ++b) {
        if (program.Incomparable(a, b)) {
          stats.order_is_total = false;
        }
      }
    }
  }
  return stats;
}

DependencyGraph::DependencyGraph(const OrderedProgram& program) {
  auto intern = [this](const Atom& atom) {
    const PredicateKey key{atom.predicate, atom.arity()};
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    const size_t id = predicates_.size();
    predicates_.push_back(key);
    edges_.emplace_back();
    index_.emplace(key, id);
    return id;
  };
  for (ComponentId c = 0; c < program.NumComponents(); ++c) {
    for (const Rule& rule : program.component(c).rules) {
      if (!rule.head.positive) has_negative_heads_ = true;
      const size_t head = intern(rule.head.atom);
      for (const Literal& literal : rule.body) {
        const size_t body = intern(literal.atom);
        edges_[head].push_back(Edge{body, !literal.positive});
      }
    }
  }
}

std::vector<std::vector<size_t>>
DependencyGraph::StronglyConnectedComponents() const {
  // Iterative Tarjan.
  const size_t n = predicates_.size();
  std::vector<int> index(n, -1), lowlink(n, 0);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  std::vector<std::vector<size_t>> components;
  int next_index = 0;

  struct Frame {
    size_t node;
    size_t edge = 0;
  };
  for (size_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    std::vector<Frame> frames = {{root}};
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      const size_t node = frame.node;
      if (frame.edge < edges_[node].size()) {
        const size_t target = edges_[node][frame.edge++].target;
        if (index[target] == -1) {
          index[target] = lowlink[target] = next_index++;
          stack.push_back(target);
          on_stack[target] = true;
          frames.push_back(Frame{target});
        } else if (on_stack[target]) {
          lowlink[node] = std::min(lowlink[node], index[target]);
        }
      } else {
        frames.pop_back();
        if (!frames.empty()) {
          lowlink[frames.back().node] =
              std::min(lowlink[frames.back().node], lowlink[node]);
        }
        if (lowlink[node] == index[node]) {
          std::vector<size_t> component;
          while (true) {
            const size_t member = stack.back();
            stack.pop_back();
            on_stack[member] = false;
            component.push_back(member);
            if (member == node) break;
          }
          components.push_back(std::move(component));
        }
      }
    }
  }
  return components;
}

bool DependencyGraph::HasNegativeCycle() const {
  const auto components = StronglyConnectedComponents();
  std::vector<size_t> component_of(predicates_.size(), 0);
  for (size_t i = 0; i < components.size(); ++i) {
    for (size_t node : components[i]) component_of[node] = i;
  }
  for (size_t node = 0; node < predicates_.size(); ++node) {
    for (const Edge& edge : edges_[node]) {
      if (edge.negative && component_of[node] == component_of[edge.target]) {
        return true;
      }
    }
  }
  return false;
}

std::optional<std::map<PredicateKey, int>> DependencyGraph::Stratification()
    const {
  if (has_negative_heads_) return std::nullopt;
  if (HasNegativeCycle()) return std::map<PredicateKey, int>{};

  // Components come out of Tarjan in reverse topological order of the
  // dependency direction head -> body, i.e. dependencies first.
  const auto components = StronglyConnectedComponents();
  std::vector<size_t> component_of(predicates_.size(), 0);
  for (size_t i = 0; i < components.size(); ++i) {
    for (size_t node : components[i]) component_of[node] = i;
  }
  std::vector<int> stratum(components.size(), 0);
  for (size_t i = 0; i < components.size(); ++i) {
    for (size_t node : components[i]) {
      for (const Edge& edge : edges_[node]) {
        const size_t dep = component_of[edge.target];
        if (dep == i) continue;
        stratum[i] = std::max(stratum[i],
                              stratum[dep] + (edge.negative ? 1 : 0));
      }
    }
  }
  std::map<PredicateKey, int> result;
  for (size_t node = 0; node < predicates_.size(); ++node) {
    result[predicates_[node]] = stratum[component_of[node]];
  }
  return result;
}

}  // namespace ordlog
