#include "lang/match.h"

#include "base/logging.h"

namespace ordlog {

bool MatchTerm(const TermPool& pool, TermId pattern, TermId ground,
               Binding& binding) {
  ORDLOG_DCHECK(pool.IsGround(ground));
  switch (pool.kind(pattern)) {
    case TermKind::kVariable: {
      const SymbolId name = pool.symbol(pattern);
      auto [it, inserted] = binding.emplace(name, ground);
      return inserted || it->second == ground;
    }
    case TermKind::kConstant:
    case TermKind::kInteger:
      return pattern == ground;
    case TermKind::kFunction: {
      if (pool.kind(ground) != TermKind::kFunction) return false;
      if (pool.symbol(pattern) != pool.symbol(ground)) return false;
      const auto& pattern_args = pool.args(pattern);
      const auto& ground_args = pool.args(ground);
      if (pattern_args.size() != ground_args.size()) return false;
      for (size_t i = 0; i < pattern_args.size(); ++i) {
        if (!MatchTerm(pool, pattern_args[i], ground_args[i], binding)) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

std::optional<Binding> MatchAtom(const TermPool& pool, const Atom& pattern,
                                 const Atom& ground,
                                 const Binding& binding) {
  if (pattern.predicate != ground.predicate ||
      pattern.args.size() != ground.args.size()) {
    return std::nullopt;
  }
  Binding extended = binding;
  for (size_t i = 0; i < pattern.args.size(); ++i) {
    if (!MatchTerm(pool, pattern.args[i], ground.args[i], extended)) {
      return std::nullopt;
    }
  }
  return extended;
}

}  // namespace ordlog
