#ifndef ORDLOG_LANG_ANALYSIS_H_
#define ORDLOG_LANG_ANALYSIS_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "lang/program.h"

namespace ordlog {

// A predicate signature: name symbol plus arity.
struct PredicateKey {
  SymbolId symbol = 0;
  size_t arity = 0;
  auto operator<=>(const PredicateKey&) const = default;
};

// Static statistics of an ordered program, as reported by `olp --stats`.
struct ProgramStats {
  size_t num_components = 0;
  size_t num_order_edges = 0;
  size_t num_rules = 0;
  size_t num_facts = 0;
  size_t num_negative_heads = 0;
  size_t num_negative_body_literals = 0;
  size_t num_constraints = 0;
  size_t num_predicates = 0;
  // Paper classification (Section 2): positive ⊆ seminegative ⊆ negative.
  bool is_positive = false;
  bool is_seminegative = false;
  // The component order is a chain (every pair comparable). Requires the
  // program to be finalized; false otherwise.
  bool order_is_total = false;

  std::string ToString(const OrderedProgram& program) const;
};

ProgramStats AnalyzeProgram(const OrderedProgram& program);

// Predicate dependency graph of the union of all components: an edge
// p -> q (positive or negative) exists when some rule with head predicate
// p has a body literal with predicate q. Negated heads contribute their
// predicate as the node (sign tracked separately).
class DependencyGraph {
 public:
  explicit DependencyGraph(const OrderedProgram& program);

  const std::vector<PredicateKey>& predicates() const { return predicates_; }

  // Classical stratification for seminegative programs: no cycle through
  // a negative edge. Returns nullopt when the program has negated heads
  // (the classical notion does not apply; ordered semantics handles those
  // directly). Otherwise, a map predicate -> stratum (0-based), or an
  // empty map when the program is not stratified.
  std::optional<std::map<PredicateKey, int>> Stratification() const;

  bool HasNegativeHeads() const { return has_negative_heads_; }

  // True when some dependency cycle passes through a negative edge
  // (meaningful for seminegative programs).
  bool HasNegativeCycle() const;

 private:
  struct Edge {
    size_t target = 0;
    bool negative = false;
  };

  // Strongly connected components, in reverse topological order.
  std::vector<std::vector<size_t>> StronglyConnectedComponents() const;

  std::vector<PredicateKey> predicates_;
  std::map<PredicateKey, size_t> index_;
  std::vector<std::vector<Edge>> edges_;
  bool has_negative_heads_ = false;
};

}  // namespace ordlog

#endif  // ORDLOG_LANG_ANALYSIS_H_
