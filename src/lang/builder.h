#ifndef ORDLOG_LANG_BUILDER_H_
#define ORDLOG_LANG_BUILDER_H_

#include <deque>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/status.h"
#include "lang/program.h"

namespace ordlog {

class ComponentBuilder;

// Fluent construction of ordered programs directly in C++, mirroring the
// textual syntax's conventions: in argument strings, a leading uppercase
// letter or '_' denotes a variable, an (optionally negative) integer
// literal an integer term, anything else a constant.
//
//   ProgramBuilder builder;
//   builder.Component("c2")
//       .Fact("bird", {"penguin"})
//       .Fact("bird", {"pigeon"})
//       .Rule("fly", {"X"}).If("bird", {"X"})
//       .NegRule("ground_animal", {"X"}).If("bird", {"X"});
//   builder.Component("c1")
//       .Fact("ground_animal", {"penguin"})
//       .NegRule("fly", {"X"}).If("ground_animal", {"X"});
//   builder.Order("c1", "c2");
//   StatusOr<OrderedProgram> program = builder.Build();
//
// Errors (bad names, Where() without a rule, order cycles) are collected
// and surfaced by Build(); the fluent calls never fail mid-chain.
class ProgramBuilder {
 public:
  ProgramBuilder();
  explicit ProgramBuilder(std::shared_ptr<TermPool> pool);
  ProgramBuilder(const ProgramBuilder&) = delete;
  ProgramBuilder& operator=(const ProgramBuilder&) = delete;

  // Returns the (created-on-first-use) builder for the named component.
  ComponentBuilder& Component(std::string_view name);

  // Declares lower < higher (creating components as needed).
  ProgramBuilder& Order(std::string_view lower, std::string_view higher);

  // Assembles and finalizes the program. Returns the first error recorded
  // during construction, if any.
  StatusOr<OrderedProgram> Build();

  TermPool& pool() { return *pool_; }
  const std::shared_ptr<TermPool>& shared_pool() const { return pool_; }

 private:
  friend class ComponentBuilder;
  void RecordError(Status status);
  // Parses an argument token per the conventions above.
  TermId ParseArg(std::string_view token);

  std::shared_ptr<TermPool> pool_;
  std::deque<ComponentBuilder> components_;  // stable addresses
  std::vector<std::pair<std::string, std::string>> order_edges_;
  Status first_error_;
};

// Accumulates one component's rules. Obtained from
// ProgramBuilder::Component; the head-introducing calls (Fact/Rule/...)
// start a new rule, and If/IfNot/Where extend the most recent one.
class ComponentBuilder {
 public:
  // Head introducers.
  ComponentBuilder& Fact(std::string_view predicate,
                         std::vector<std::string> args = {});
  ComponentBuilder& NegFact(std::string_view predicate,
                            std::vector<std::string> args = {});
  ComponentBuilder& Rule(std::string_view predicate,
                         std::vector<std::string> args = {});
  ComponentBuilder& NegRule(std::string_view predicate,
                            std::vector<std::string> args = {});

  // Body extenders (apply to the most recent head).
  ComponentBuilder& If(std::string_view predicate,
                       std::vector<std::string> args = {});
  ComponentBuilder& IfNot(std::string_view predicate,
                          std::vector<std::string> args = {});
  // Comparison constraint; operands follow the same token conventions
  // (variables, integers, constants — constants only meaningful under
  // kEq/kNe).
  ComponentBuilder& Where(std::string_view lhs, CompareOp op,
                          std::string_view rhs);

  const std::string& name() const { return name_; }

 private:
  friend class ProgramBuilder;
  ComponentBuilder(ProgramBuilder* owner, std::string name)
      : owner_(owner), name_(std::move(name)) {}

  ComponentBuilder& StartRule(std::string_view predicate,
                              std::vector<std::string> args, bool positive);
  ComponentBuilder& AddBody(std::string_view predicate,
                            std::vector<std::string> args, bool positive);
  Atom MakeAtomFromTokens(std::string_view predicate,
                          std::vector<std::string> args);

  ProgramBuilder* owner_;
  std::string name_;
  std::vector<ordlog::Rule> rules_;
  bool has_open_rule_ = false;
};

}  // namespace ordlog

#endif  // ORDLOG_LANG_BUILDER_H_
