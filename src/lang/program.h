#ifndef ORDLOG_LANG_PROGRAM_H_
#define ORDLOG_LANG_PROGRAM_H_

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/bitset.h"
#include "base/status.h"
#include "lang/rule.h"

namespace ordlog {

// Dense id of a component within an OrderedProgram.
using ComponentId = uint32_t;

// A named module/object: a set of rules. Components are the paper's
// "negative programs" that an OrderedProgram partially orders.
struct Component {
  std::string name;
  std::vector<Rule> rules;
};

// An ordered logic program (paper Definition 1): a finite partially-ordered
// set of components. `AddOrder(lower, higher)` declares `lower < higher`,
// i.e. `lower` is the more specific module that inherits (and may overrule)
// the rules of `higher`.
//
// Usage:
//   auto pool = std::make_shared<TermPool>();
//   OrderedProgram program(pool);
//   ComponentId c1 = program.AddComponent("c1").value();
//   ComponentId c2 = program.AddComponent("c2").value();
//   ... program.AddRule(c2, rule) ...
//   program.AddOrder(c1, c2);
//   Status s = program.Finalize();   // validates acyclicity, closes <=
//
// After Finalize the order queries Leq/Less/Incomparable are available.
// Mutations after Finalize reset the program to the unfinalized state.
class OrderedProgram {
 public:
  explicit OrderedProgram(std::shared_ptr<TermPool> pool);

  // Copyable: components and edges are value data; the pool is shared.
  OrderedProgram(const OrderedProgram&) = default;
  OrderedProgram& operator=(const OrderedProgram&) = default;

  TermPool& pool() { return *pool_; }
  const TermPool& pool() const { return *pool_; }
  const std::shared_ptr<TermPool>& shared_pool() const { return pool_; }

  // Adds an empty component. Fails with kAlreadyExists on duplicate name.
  StatusOr<ComponentId> AddComponent(std::string name);

  // Appends `rule` to component `id`.
  Status AddRule(ComponentId id, Rule rule);

  // Removes the first rule of component `id` equal to `rule` (structural
  // equality over interned term ids). kNotFound when no rule matches.
  // Like every other mutation this resets the finalized state.
  Status RemoveRule(ComponentId id, const Rule& rule);

  // Declares `lower < higher`. Both must exist and differ. Cycles are
  // detected at Finalize time.
  Status AddOrder(ComponentId lower, ComponentId higher);

  StatusOr<ComponentId> FindComponent(std::string_view name) const;

  size_t NumComponents() const { return components_.size(); }
  const Component& component(ComponentId id) const;
  const std::vector<std::pair<ComponentId, ComponentId>>& order_edges()
      const {
    return edges_;
  }

  // Computes the reflexive-transitive closure of the declared edges and
  // verifies that the strict order is acyclic. Idempotent.
  Status Finalize();
  bool finalized() const { return finalized_; }

  // a <= b: component a sees b's rules (reflexive). Requires finalized().
  bool Leq(ComponentId a, ComponentId b) const;
  // a < b (strict).
  bool Less(ComponentId a, ComponentId b) const;
  // a <> b: distinct and order-incomparable.
  bool Incomparable(ComponentId a, ComponentId b) const;

  // The components whose rules are visible from `c` (the components of
  // C*), i.e. all b with c <= b, in increasing id order. Includes c.
  std::vector<ComponentId> ComponentsAbove(ComponentId c) const;

  // Total number of (non-ground) rules across all components.
  size_t NumRules() const;

 private:
  std::shared_ptr<TermPool> pool_;
  std::vector<Component> components_;
  std::unordered_map<std::string, ComponentId> by_name_;
  std::vector<std::pair<ComponentId, ComponentId>> edges_;  // lower < higher
  std::vector<DynamicBitset> leq_;  // leq_[a].Test(b) <=> a <= b
  bool finalized_ = false;
};

}  // namespace ordlog

#endif  // ORDLOG_LANG_PROGRAM_H_
