#include "lang/printer.h"

#include <sstream>

#include "base/strings.h"

namespace ordlog {

std::string ToString(const TermPool& pool, const Atom& atom) {
  if (atom.args.empty()) {
    return pool.symbols().Name(atom.predicate);
  }
  return StrCat(pool.symbols().Name(atom.predicate), "(",
                StrJoin(atom.args, ", ",
                        [&pool](std::ostringstream& os, TermId arg) {
                          os << pool.ToString(arg);
                        }),
                ")");
}

std::string ToString(const TermPool& pool, const Literal& literal) {
  return literal.positive ? ToString(pool, literal.atom)
                          : StrCat("-", ToString(pool, literal.atom));
}

std::string ToString(const TermPool& pool, const Rule& rule) {
  std::ostringstream os;
  os << ToString(pool, rule.head);
  if (!rule.IsFact()) {
    os << " :- ";
    bool first = true;
    for (const Literal& literal : rule.body) {
      if (!first) os << ", ";
      first = false;
      os << ToString(pool, literal);
    }
    for (const Comparison& comparison : rule.constraints) {
      if (!first) os << ", ";
      first = false;
      os << comparison.ToString(pool);
    }
  }
  os << ".";
  return os.str();
}

std::string ToString(const TermPool& pool, const Component& component) {
  std::ostringstream os;
  os << "component " << component.name << " {\n";
  for (const Rule& rule : component.rules) {
    os << "  " << ToString(pool, rule) << "\n";
  }
  os << "}\n";
  return os.str();
}

std::string ToString(const OrderedProgram& program) {
  std::ostringstream os;
  for (ComponentId id = 0; id < program.NumComponents(); ++id) {
    os << ToString(program.pool(), program.component(id));
  }
  for (const auto& [lower, higher] : program.order_edges()) {
    os << "order " << program.component(lower).name << " < "
       << program.component(higher).name << ".\n";
  }
  return os.str();
}

}  // namespace ordlog
