#include "lang/program.h"

#include "base/logging.h"
#include "base/strings.h"

namespace ordlog {

OrderedProgram::OrderedProgram(std::shared_ptr<TermPool> pool)
    : pool_(std::move(pool)) {
  ORDLOG_CHECK(pool_ != nullptr);
}

StatusOr<ComponentId> OrderedProgram::AddComponent(std::string name) {
  if (by_name_.contains(name)) {
    return AlreadyExistsError(StrCat("duplicate component '", name, "'"));
  }
  const ComponentId id = static_cast<ComponentId>(components_.size());
  by_name_.emplace(name, id);
  components_.push_back(Component{std::move(name), {}});
  finalized_ = false;
  return id;
}

Status OrderedProgram::AddRule(ComponentId id, Rule rule) {
  if (id >= components_.size()) {
    return OutOfRangeError(StrCat("no component with id ", id));
  }
  components_[id].rules.push_back(std::move(rule));
  finalized_ = false;
  return Status::Ok();
}

Status OrderedProgram::RemoveRule(ComponentId id, const Rule& rule) {
  if (id >= components_.size()) {
    return OutOfRangeError(StrCat("no component with id ", id));
  }
  std::vector<Rule>& rules = components_[id].rules;
  for (size_t i = 0; i < rules.size(); ++i) {
    if (rules[i] == rule) {
      rules.erase(rules.begin() + static_cast<ptrdiff_t>(i));
      finalized_ = false;
      return Status::Ok();
    }
  }
  return NotFoundError(StrCat("no matching rule in component '",
                              components_[id].name, "'"));
}

Status OrderedProgram::AddOrder(ComponentId lower, ComponentId higher) {
  if (lower >= components_.size() || higher >= components_.size()) {
    return OutOfRangeError("order edge references unknown component");
  }
  if (lower == higher) {
    return InvalidArgumentError(
        StrCat("component '", components_[lower].name,
               "' cannot be ordered below itself"));
  }
  edges_.emplace_back(lower, higher);
  finalized_ = false;
  return Status::Ok();
}

StatusOr<ComponentId> OrderedProgram::FindComponent(
    std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return NotFoundError(StrCat("no component named '", name, "'"));
  }
  return it->second;
}

const Component& OrderedProgram::component(ComponentId id) const {
  ORDLOG_CHECK_LT(id, components_.size());
  return components_[id];
}

Status OrderedProgram::Finalize() {
  const size_t n = components_.size();
  leq_.assign(n, DynamicBitset(n));
  for (size_t i = 0; i < n; ++i) leq_[i].Set(i);
  for (const auto& [lower, higher] : edges_) {
    leq_[lower].Set(higher);
  }
  // Floyd–Warshall-style closure over the bit rows; n is the number of
  // modules, which is small in practice.
  for (size_t k = 0; k < n; ++k) {
    for (size_t i = 0; i < n; ++i) {
      if (leq_[i].Test(k)) leq_[i] |= leq_[k];
    }
  }
  // Acyclic <=> the closed relation is antisymmetric off the diagonal.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (leq_[i].Test(j) && leq_[j].Test(i)) {
        return InvalidArgumentError(
            StrCat("component order contains a cycle through '",
                   components_[i].name, "' and '", components_[j].name, "'"));
      }
    }
  }
  finalized_ = true;
  return Status::Ok();
}

bool OrderedProgram::Leq(ComponentId a, ComponentId b) const {
  ORDLOG_CHECK(finalized_) << "call Finalize() before order queries";
  return leq_[a].Test(b);
}

bool OrderedProgram::Less(ComponentId a, ComponentId b) const {
  return a != b && Leq(a, b);
}

bool OrderedProgram::Incomparable(ComponentId a, ComponentId b) const {
  return a != b && !Leq(a, b) && !Leq(b, a);
}

std::vector<ComponentId> OrderedProgram::ComponentsAbove(
    ComponentId c) const {
  ORDLOG_CHECK(finalized_) << "call Finalize() before order queries";
  ORDLOG_CHECK_LT(c, components_.size());
  std::vector<ComponentId> result;
  leq_[c].ForEach(
      [&result](size_t b) { result.push_back(static_cast<ComponentId>(b)); });
  return result;
}

size_t OrderedProgram::NumRules() const {
  size_t total = 0;
  for (const Component& component : components_) {
    total += component.rules.size();
  }
  return total;
}

}  // namespace ordlog
