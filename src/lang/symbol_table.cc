#include "lang/symbol_table.h"

#include "base/logging.h"

namespace ordlog {

SymbolId SymbolTable::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    return it->second;
  }
  const SymbolId id = static_cast<SymbolId>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), id);
  return id;
}

std::optional<SymbolId> SymbolTable::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) {
    return std::nullopt;
  }
  return it->second;
}

const std::string& SymbolTable::Name(SymbolId id) const {
  ORDLOG_CHECK_LT(id, names_.size());
  return names_[id];
}

}  // namespace ordlog
