#ifndef ORDLOG_LANG_TERM_H_
#define ORDLOG_LANG_TERM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "lang/symbol_table.h"

namespace ordlog {

// Dense id of a hash-consed term inside a TermPool. Two TermIds from the
// same pool are equal iff the terms are structurally equal, so term
// comparison anywhere in the engine is integer comparison.
using TermId = uint32_t;

enum class TermKind : uint8_t {
  kVariable,  // X, Y, ...
  kConstant,  // penguin, mimmo, ...
  kInteger,   // 12, -5, ...
  kFunction,  // f(t1, ..., tn)
};

// A binding of variables (by name symbol) to terms, as produced by the
// grounder when instantiating a rule.
using Binding = std::unordered_map<SymbolId, TermId>;

// Owns all terms of a program and hash-conses them: structurally equal
// terms receive the same TermId. Also owns the SymbolTable for every name
// in the program (predicates, constants, functors, variables).
//
// TermPool is append-only; TermIds and SymbolIds stay valid for the pool's
// lifetime. Not thread-safe for concurrent mutation.
class TermPool {
 public:
  TermPool() = default;
  TermPool(const TermPool&) = delete;
  TermPool& operator=(const TermPool&) = delete;

  SymbolTable& symbols() { return symbols_; }
  const SymbolTable& symbols() const { return symbols_; }

  // Term constructors (interning).
  TermId MakeVariable(std::string_view name);
  TermId MakeVariable(SymbolId name);
  TermId MakeConstant(std::string_view name);
  TermId MakeConstant(SymbolId name);
  TermId MakeInteger(int64_t value);
  TermId MakeFunction(std::string_view functor, std::vector<TermId> args);
  TermId MakeFunction(SymbolId functor, std::vector<TermId> args);

  // Introspection. `id` must have been produced by this pool.
  TermKind kind(TermId id) const;
  // Name symbol of a variable/constant/function term.
  SymbolId symbol(TermId id) const;
  // Value of an integer term.
  int64_t int_value(TermId id) const;
  // Argument list of a function term (empty for other kinds).
  const std::vector<TermId>& args(TermId id) const;
  // True when the term contains no variables. O(1) (cached).
  bool IsGround(TermId id) const;
  // Depth of nesting: variables/constants/integers have depth 0,
  // f(t1..tn) has 1 + max depth of the ti.
  int Depth(TermId id) const;

  // Number of distinct terms in the pool.
  size_t size() const { return terms_.size(); }

  // Replaces every variable in `term` that is bound in `binding` by its
  // binding. Unbound variables are left in place.
  TermId Substitute(TermId term, const Binding& binding);

  // Replaces every occurrence of the constant named `from` by the term
  // `to`. Used by the knowledge base's object-identity instantiation (the
  // reserved `self` constant).
  TermId ReplaceConstant(TermId term, SymbolId from, TermId to);

  // Appends the name symbols of the variables occurring in `term` to
  // `out`, in first-occurrence order, skipping names already in `out`.
  void CollectVariables(TermId term, std::vector<SymbolId>* out) const;

  // Renders the term in source syntax, e.g. "f(penguin, X, 3)".
  std::string ToString(TermId id) const;

 private:
  struct TermData {
    TermKind kind;
    SymbolId symbol = 0;   // variable/constant name or functor
    int64_t int_value = 0; // integer payload
    std::vector<TermId> args;
    bool ground = true;
    int depth = 0;
  };

  struct Key {
    TermKind kind;
    SymbolId symbol;
    int64_t int_value;
    std::vector<TermId> args;
    bool operator==(const Key& other) const = default;
  };
  struct KeyHash {
    size_t operator()(const Key& key) const;
  };

  TermId Intern(TermData data);

  SymbolTable symbols_;
  std::vector<TermData> terms_;
  std::unordered_map<Key, TermId, KeyHash> index_;
};

}  // namespace ordlog

#endif  // ORDLOG_LANG_TERM_H_
