#include "lang/term.h"

#include <algorithm>

#include "base/hash.h"
#include "base/logging.h"
#include "base/strings.h"

namespace ordlog {

size_t TermPool::KeyHash::operator()(const Key& key) const {
  size_t seed = 0;
  HashCombine(seed, static_cast<uint8_t>(key.kind));
  HashCombine(seed, key.symbol);
  HashCombine(seed, key.int_value);
  for (TermId arg : key.args) HashCombine(seed, arg);
  return seed;
}

TermId TermPool::Intern(TermData data) {
  Key key{data.kind, data.symbol, data.int_value, data.args};
  auto it = index_.find(key);
  if (it != index_.end()) {
    return it->second;
  }
  const TermId id = static_cast<TermId>(terms_.size());
  terms_.push_back(std::move(data));
  index_.emplace(std::move(key), id);
  return id;
}

TermId TermPool::MakeVariable(std::string_view name) {
  return MakeVariable(symbols_.Intern(name));
}

TermId TermPool::MakeVariable(SymbolId name) {
  TermData data;
  data.kind = TermKind::kVariable;
  data.symbol = name;
  data.ground = false;
  return Intern(std::move(data));
}

TermId TermPool::MakeConstant(std::string_view name) {
  return MakeConstant(symbols_.Intern(name));
}

TermId TermPool::MakeConstant(SymbolId name) {
  TermData data;
  data.kind = TermKind::kConstant;
  data.symbol = name;
  return Intern(std::move(data));
}

TermId TermPool::MakeInteger(int64_t value) {
  TermData data;
  data.kind = TermKind::kInteger;
  data.int_value = value;
  return Intern(std::move(data));
}

TermId TermPool::MakeFunction(std::string_view functor,
                              std::vector<TermId> args) {
  return MakeFunction(symbols_.Intern(functor), std::move(args));
}

TermId TermPool::MakeFunction(SymbolId functor, std::vector<TermId> args) {
  TermData data;
  data.kind = TermKind::kFunction;
  data.symbol = functor;
  data.args = std::move(args);
  for (TermId arg : data.args) {
    ORDLOG_CHECK_LT(arg, terms_.size());
    data.ground = data.ground && terms_[arg].ground;
    data.depth = std::max(data.depth, terms_[arg].depth + 1);
  }
  if (data.args.empty()) data.depth = 1;
  return Intern(std::move(data));
}

TermKind TermPool::kind(TermId id) const {
  ORDLOG_CHECK_LT(id, terms_.size());
  return terms_[id].kind;
}

SymbolId TermPool::symbol(TermId id) const {
  ORDLOG_CHECK_LT(id, terms_.size());
  ORDLOG_DCHECK(terms_[id].kind != TermKind::kInteger);
  return terms_[id].symbol;
}

int64_t TermPool::int_value(TermId id) const {
  ORDLOG_CHECK_LT(id, terms_.size());
  ORDLOG_DCHECK(terms_[id].kind == TermKind::kInteger);
  return terms_[id].int_value;
}

const std::vector<TermId>& TermPool::args(TermId id) const {
  ORDLOG_CHECK_LT(id, terms_.size());
  return terms_[id].args;
}

bool TermPool::IsGround(TermId id) const {
  ORDLOG_CHECK_LT(id, terms_.size());
  return terms_[id].ground;
}

int TermPool::Depth(TermId id) const {
  ORDLOG_CHECK_LT(id, terms_.size());
  return terms_[id].depth;
}

TermId TermPool::Substitute(TermId term, const Binding& binding) {
  const TermData& data = terms_[term];
  switch (data.kind) {
    case TermKind::kVariable: {
      auto it = binding.find(data.symbol);
      return it == binding.end() ? term : it->second;
    }
    case TermKind::kConstant:
    case TermKind::kInteger:
      return term;
    case TermKind::kFunction: {
      if (data.ground) return term;
      std::vector<TermId> new_args;
      new_args.reserve(data.args.size());
      // Note: `data` may be invalidated by recursive Intern calls, so copy
      // what we need first.
      const SymbolId functor = data.symbol;
      const std::vector<TermId> old_args = data.args;
      for (TermId arg : old_args) {
        new_args.push_back(Substitute(arg, binding));
      }
      return MakeFunction(functor, std::move(new_args));
    }
  }
  ORDLOG_CHECK(false) << "corrupt term kind";
  return term;
}

TermId TermPool::ReplaceConstant(TermId term, SymbolId from, TermId to) {
  const TermData& data = terms_[term];
  switch (data.kind) {
    case TermKind::kVariable:
    case TermKind::kInteger:
      return term;
    case TermKind::kConstant:
      return data.symbol == from ? to : term;
    case TermKind::kFunction: {
      const SymbolId functor = data.symbol;
      const std::vector<TermId> old_args = data.args;  // survive realloc
      std::vector<TermId> new_args;
      new_args.reserve(old_args.size());
      bool changed = false;
      for (TermId arg : old_args) {
        const TermId replaced = ReplaceConstant(arg, from, to);
        changed = changed || replaced != arg;
        new_args.push_back(replaced);
      }
      return changed ? MakeFunction(functor, std::move(new_args)) : term;
    }
  }
  ORDLOG_CHECK(false) << "corrupt term kind";
  return term;
}

void TermPool::CollectVariables(TermId term,
                                std::vector<SymbolId>* out) const {
  const TermData& data = terms_[term];
  switch (data.kind) {
    case TermKind::kVariable:
      if (std::find(out->begin(), out->end(), data.symbol) == out->end()) {
        out->push_back(data.symbol);
      }
      return;
    case TermKind::kConstant:
    case TermKind::kInteger:
      return;
    case TermKind::kFunction:
      if (data.ground) return;
      for (TermId arg : data.args) CollectVariables(arg, out);
      return;
  }
}

std::string TermPool::ToString(TermId id) const {
  const TermData& data = terms_[id];
  switch (data.kind) {
    case TermKind::kVariable:
    case TermKind::kConstant:
      return symbols_.Name(data.symbol);
    case TermKind::kInteger:
      return std::to_string(data.int_value);
    case TermKind::kFunction:
      return StrCat(symbols_.Name(data.symbol), "(",
                    StrJoin(data.args, ", ",
                            [this](std::ostringstream& os, TermId arg) {
                              os << ToString(arg);
                            }),
                    ")");
  }
  return "?";
}

}  // namespace ordlog
