#include "lang/rule.h"

namespace ordlog {

bool Rule::IsPositive() const {
  if (!head.positive) return false;
  for (const Literal& literal : body) {
    if (!literal.positive) return false;
  }
  return true;
}

bool Rule::IsGround(const TermPool& pool) const {
  if (!head.IsGround(pool)) return false;
  for (const Literal& literal : body) {
    if (!literal.IsGround(pool)) return false;
  }
  // Constraints over variables make a rule non-ground.
  std::vector<SymbolId> constraint_vars;
  for (const Comparison& comparison : constraints) {
    comparison.CollectVariables(pool, &constraint_vars);
  }
  return constraint_vars.empty();
}

std::vector<SymbolId> Rule::Variables(const TermPool& pool) const {
  std::vector<SymbolId> vars;
  head.atom.CollectVariables(pool, &vars);
  for (const Literal& literal : body) {
    literal.atom.CollectVariables(pool, &vars);
  }
  for (const Comparison& comparison : constraints) {
    comparison.CollectVariables(pool, &vars);
  }
  return vars;
}

Rule MakeFact(Literal head) { return Rule{std::move(head), {}, {}}; }

Rule MakeRule(Literal head, std::vector<Literal> body,
              std::vector<Comparison> constraints) {
  return Rule{std::move(head), std::move(body), std::move(constraints)};
}

}  // namespace ordlog
