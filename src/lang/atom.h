#ifndef ORDLOG_LANG_ATOM_H_
#define ORDLOG_LANG_ATOM_H_

#include <cstddef>
#include <vector>

#include "lang/term.h"

namespace ordlog {

// A predicate applied to terms: p(t1, ..., tn). Value type; term ids refer
// to a TermPool that the atom does not own.
struct Atom {
  SymbolId predicate = 0;
  std::vector<TermId> args;

  bool operator==(const Atom& other) const = default;

  size_t arity() const { return args.size(); }
  bool IsGround(const TermPool& pool) const;
  void CollectVariables(const TermPool& pool,
                        std::vector<SymbolId>* out) const;
};

struct AtomHash {
  size_t operator()(const Atom& atom) const;
};

// A possibly negated atom. `-p(...)` is written with positive == false.
// The paper's "complementary" literals are Complement() pairs.
struct Literal {
  Atom atom;
  bool positive = true;

  bool operator==(const Literal& other) const = default;

  Literal Complement() const { return Literal{atom, !positive}; }
  bool IsGround(const TermPool& pool) const { return atom.IsGround(pool); }
};

struct LiteralHash {
  size_t operator()(const Literal& literal) const;
};

// Convenience constructors used heavily by tests and examples.
Atom MakeAtom(TermPool& pool, std::string_view predicate,
              std::vector<TermId> args = {});
Literal Pos(Atom atom);
Literal Neg(Atom atom);

}  // namespace ordlog

#endif  // ORDLOG_LANG_ATOM_H_
