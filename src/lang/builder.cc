#include "lang/builder.h"

#include <cctype>
#include <cstdlib>

#include "base/strings.h"

namespace ordlog {

namespace {

bool LooksLikeVariable(std::string_view token) {
  return !token.empty() &&
         (std::isupper(static_cast<unsigned char>(token[0])) ||
          token[0] == '_');
}

bool LooksLikeInteger(std::string_view token) {
  if (token.empty()) return false;
  size_t start = token[0] == '-' ? 1 : 0;
  if (start == token.size()) return false;
  for (size_t i = start; i < token.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(token[i]))) return false;
  }
  return true;
}

}  // namespace

ProgramBuilder::ProgramBuilder()
    : ProgramBuilder(std::make_shared<TermPool>()) {}

ProgramBuilder::ProgramBuilder(std::shared_ptr<TermPool> pool)
    : pool_(std::move(pool)) {}

void ProgramBuilder::RecordError(Status status) {
  if (first_error_.ok()) first_error_ = std::move(status);
}

TermId ProgramBuilder::ParseArg(std::string_view token) {
  if (LooksLikeVariable(token)) return pool_->MakeVariable(token);
  if (LooksLikeInteger(token)) {
    return pool_->MakeInteger(std::strtoll(std::string(token).c_str(),
                                           nullptr, 10));
  }
  if (token.empty()) {
    RecordError(InvalidArgumentError("empty argument token"));
    return pool_->MakeConstant("_invalid");
  }
  return pool_->MakeConstant(token);
}

ComponentBuilder& ProgramBuilder::Component(std::string_view name) {
  for (ComponentBuilder& component : components_) {
    if (component.name() == name) return component;
  }
  components_.push_back(ComponentBuilder(this, std::string(name)));
  return components_.back();
}

ProgramBuilder& ProgramBuilder::Order(std::string_view lower,
                                      std::string_view higher) {
  Component(lower);   // ensure both exist
  Component(higher);
  order_edges_.emplace_back(std::string(lower), std::string(higher));
  return *this;
}

StatusOr<OrderedProgram> ProgramBuilder::Build() {
  ORDLOG_RETURN_IF_ERROR(first_error_);
  OrderedProgram program(pool_);
  for (ComponentBuilder& component : components_) {
    ORDLOG_ASSIGN_OR_RETURN(const ComponentId id,
                            program.AddComponent(component.name()));
    for (ordlog::Rule& rule : component.rules_) {
      ORDLOG_RETURN_IF_ERROR(program.AddRule(id, std::move(rule)));
    }
  }
  for (const auto& [lower, higher] : order_edges_) {
    ORDLOG_ASSIGN_OR_RETURN(const ComponentId low,
                            program.FindComponent(lower));
    ORDLOG_ASSIGN_OR_RETURN(const ComponentId high,
                            program.FindComponent(higher));
    ORDLOG_RETURN_IF_ERROR(program.AddOrder(low, high));
  }
  ORDLOG_RETURN_IF_ERROR(program.Finalize());
  return program;
}

Atom ComponentBuilder::MakeAtomFromTokens(std::string_view predicate,
                                          std::vector<std::string> args) {
  Atom atom;
  atom.predicate = owner_->pool_->symbols().Intern(predicate);
  atom.args.reserve(args.size());
  for (const std::string& token : args) {
    atom.args.push_back(owner_->ParseArg(token));
  }
  return atom;
}

ComponentBuilder& ComponentBuilder::StartRule(std::string_view predicate,
                                              std::vector<std::string> args,
                                              bool positive) {
  ordlog::Rule rule;
  rule.head = Literal{MakeAtomFromTokens(predicate, std::move(args)),
                      positive};
  rules_.push_back(std::move(rule));
  has_open_rule_ = true;
  return *this;
}

ComponentBuilder& ComponentBuilder::AddBody(std::string_view predicate,
                                            std::vector<std::string> args,
                                            bool positive) {
  if (!has_open_rule_) {
    owner_->RecordError(InvalidArgumentError(
        StrCat("If/IfNot(", predicate, ") before any rule head in "
               "component '", name_, "'")));
    return *this;
  }
  rules_.back().body.push_back(
      Literal{MakeAtomFromTokens(predicate, std::move(args)), positive});
  return *this;
}

ComponentBuilder& ComponentBuilder::Fact(std::string_view predicate,
                                         std::vector<std::string> args) {
  StartRule(predicate, std::move(args), /*positive=*/true);
  has_open_rule_ = false;  // facts take no body
  return *this;
}

ComponentBuilder& ComponentBuilder::NegFact(std::string_view predicate,
                                            std::vector<std::string> args) {
  StartRule(predicate, std::move(args), /*positive=*/false);
  has_open_rule_ = false;
  return *this;
}

ComponentBuilder& ComponentBuilder::Rule(std::string_view predicate,
                                         std::vector<std::string> args) {
  return StartRule(predicate, std::move(args), /*positive=*/true);
}

ComponentBuilder& ComponentBuilder::NegRule(std::string_view predicate,
                                            std::vector<std::string> args) {
  return StartRule(predicate, std::move(args), /*positive=*/false);
}

ComponentBuilder& ComponentBuilder::If(std::string_view predicate,
                                       std::vector<std::string> args) {
  return AddBody(predicate, std::move(args), /*positive=*/true);
}

ComponentBuilder& ComponentBuilder::IfNot(std::string_view predicate,
                                          std::vector<std::string> args) {
  return AddBody(predicate, std::move(args), /*positive=*/false);
}

ComponentBuilder& ComponentBuilder::Where(std::string_view lhs,
                                          CompareOp op,
                                          std::string_view rhs) {
  if (!has_open_rule_) {
    owner_->RecordError(InvalidArgumentError(
        StrCat("Where() before any rule head in component '", name_, "'")));
    return *this;
  }
  auto operand = [this](std::string_view token) {
    if (LooksLikeVariable(token)) {
      return ArithExpr::Variable(owner_->pool_->symbols().Intern(token));
    }
    if (LooksLikeInteger(token)) {
      return ArithExpr::Constant(
          std::strtoll(std::string(token).c_str(), nullptr, 10));
    }
    return ArithExpr::Term(owner_->pool_->MakeConstant(token));
  };
  rules_.back().constraints.push_back(
      Comparison{op, operand(lhs), operand(rhs)});
  return *this;
}

}  // namespace ordlog
