#ifndef ORDLOG_LANG_PRINTER_H_
#define ORDLOG_LANG_PRINTER_H_

#include <string>

#include "lang/program.h"

namespace ordlog {

// Renders language objects in the textual syntax accepted by the parser,
// so Parse(ToString(x)) round-trips (tested in parser/roundtrip_test).

// "p(a, f(X))"
std::string ToString(const TermPool& pool, const Atom& atom);
// "p(a)" or "-p(a)"
std::string ToString(const TermPool& pool, const Literal& literal);
// "p(a)." / "p(X) :- q(X), X > 2."
std::string ToString(const TermPool& pool, const Rule& rule);
// "component c { ... }"
std::string ToString(const TermPool& pool, const Component& component);
// Whole program including order declarations.
std::string ToString(const OrderedProgram& program);

}  // namespace ordlog

#endif  // ORDLOG_LANG_PRINTER_H_
