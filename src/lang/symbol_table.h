#ifndef ORDLOG_LANG_SYMBOL_TABLE_H_
#define ORDLOG_LANG_SYMBOL_TABLE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace ordlog {

// Dense id of an interned name (predicate symbol, constant, functor or
// variable name). Ids are stable for the lifetime of the SymbolTable.
using SymbolId = uint32_t;

// Interns strings into dense SymbolIds so that the rest of the system can
// compare names by integer equality and index arrays by symbol.
class SymbolTable {
 public:
  SymbolTable() = default;

  // Returns the id for `name`, creating it on first use.
  SymbolId Intern(std::string_view name);

  // Returns the id for `name` if it was interned before.
  std::optional<SymbolId> Find(std::string_view name) const;

  // Returns the name for `id`. `id` must have been returned by Intern.
  const std::string& Name(SymbolId id) const;

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, SymbolId> index_;
};

}  // namespace ordlog

#endif  // ORDLOG_LANG_SYMBOL_TABLE_H_
