#ifndef ORDLOG_KB_DERIVATION_H_
#define ORDLOG_KB_DERIVATION_H_

#include <string>
#include <vector>

#include "core/interpretation.h"
#include "core/rule_status.h"

namespace ordlog {

// Renders a ground rule as "head :- body [component]" (body omitted for
// facts), using the program's symbol table.
std::string GroundRuleToString(const GroundProgram& program,
                               const GroundRule& rule);

// rank[atom] = V-iteration of V∞(∅) at which the atom's literal first
// appeared, or -1 if the atom is undefined in the view's least model.
// Ranks order derivations into well-founded proof trees (a rule instance
// justifies its head only if every body literal was derived strictly
// earlier), which guards the tree walk against cyclic justifications.
std::vector<int> DerivationRanks(const GroundProgram& program,
                                 ComponentId view);

// Builds serializable derivation graphs for the least-model semantics of
// one view: the machine-readable counterpart of Explainer.
//
// The graph answers the three provenance questions of the paper's
// Definition 2 statuses:
//   why p          — a proof tree of applied, non-silenced rules down to
//                    facts, each body literal derived strictly earlier;
//   why not p      — the proof tree for ¬p plus the diagnosis of every
//                    rule for p (overruled/defeated with the silencing
//                    rule and component pair, blocked, or inapplicable);
//   why undefined  — a recursive diagnosis: every rule for the atom with
//                    its dominant status, following inapplicable rules
//                    into their undefined body atoms until closure.
//
// Output is deterministic (rule-index and discovery order, no timing
// fields), so it can be golden-tested byte-for-byte.
class DerivationBuilder {
 public:
  // `least_model` must be the V∞(∅) fixpoint for (program, view).
  DerivationBuilder(const GroundProgram& program, ComponentId view,
                    const Interpretation& least_model);

  // Serializes the derivation graph of `literal` as a single-line JSON
  // object. Top-level keys: "query", "module", "truth" (true/false/
  // undefined), then per truth value: "derivation" (+"counter_rules") for
  // true, "complement"+"derivation"+"counter_rules" for false, and
  // "undefined" (the recursive atom diagnoses) otherwise.
  std::string ToJson(GroundLiteral literal) const;

 private:
  // One rule's contribution to (or failure to contribute to) the atom it
  // heads: the dominant Definition 2 status, the silencing witness for
  // overruled/defeated, and the undefined body atoms for inapplicable
  // rules (the edges the undefined-diagnosis recursion follows).
  struct RuleDiagnosis {
    uint32_t rule_index = 0;
    RuleStatusCode status = RuleStatusCode::kNotApplicable;
    std::optional<RuleStatusEvaluator::Silencer> silencer;
    std::vector<GroundAtomId> undefined_body;
  };

  // Diagnoses every view-visible rule whose head is ±`atom`.
  std::vector<RuleDiagnosis> DiagnoseAtom(GroundAtomId atom) const;
  // Diagnoses every view-visible rule with exactly head `head`.
  std::vector<RuleDiagnosis> DiagnoseHead(GroundLiteral head) const;
  void AppendRuleDiagnosis(uint32_t rule_index,
                           std::vector<RuleDiagnosis>* out) const;

  // Writes the proof tree of a true literal as a JSON object.
  void TreeToJson(GroundLiteral literal, std::ostream& os) const;
  void DiagnosesToJson(const std::vector<RuleDiagnosis>& diagnoses,
                       std::ostream& os) const;

  const GroundProgram& program_;
  const ComponentId view_;
  const Interpretation& model_;
  RuleStatusEvaluator evaluator_;
  std::vector<int> rank_;
};

}  // namespace ordlog

#endif  // ORDLOG_KB_DERIVATION_H_
