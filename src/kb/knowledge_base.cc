#include "kb/knowledge_base.h"

#include <unordered_set>

#include "base/strings.h"
#include "core/least_model.h"
#include "lang/match.h"
#include "lang/printer.h"
#include "core/stable_solver.h"
#include "incremental/delta_grounder.h"
#include "incremental/depgraph.h"
#include "kb/derivation.h"
#include "kb/explain.h"
#include "parser/parser.h"
#include "trace/json.h"

namespace ordlog {

KnowledgeBase::KnowledgeBase() : KnowledgeBase(GrounderOptions{}) {}

KnowledgeBase::KnowledgeBase(GrounderOptions options)
    : options_(options),
      pool_(std::make_shared<TermPool>()),
      program_(pool_) {}

void KnowledgeBase::Invalidate() {
  ++revision_;
  ground_.reset();
  least_models_.clear();
  stable_models_.clear();
  warm_seeds_.clear();
}

Status KnowledgeBase::AddModule(std::string_view name) {
  Invalidate();
  const StatusOr<ComponentId> result =
      program_.AddComponent(std::string(name));
  return result.ok() ? Status::Ok() : result.status();
}

bool KnowledgeBase::HasModule(std::string_view name) const {
  return program_.FindComponent(name).ok();
}

StatusOr<ComponentId> KnowledgeBase::ModuleId(std::string_view name) const {
  return program_.FindComponent(name);
}

Status KnowledgeBase::AddIsa(std::string_view child,
                             std::string_view parent) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId child_id, ModuleId(child));
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId parent_id, ModuleId(parent));
  Invalidate();
  return program_.AddOrder(child_id, parent_id);
}

Status KnowledgeBase::AddRuleText(std::string_view module,
                                  std::string_view rule_text) {
  ORDLOG_ASSIGN_OR_RETURN(Rule rule, ParseRule(rule_text, *pool_));
  return AddRule(module, std::move(rule));
}

Status KnowledgeBase::AddRule(std::string_view module, Rule rule) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  Invalidate();
  return program_.AddRule(id, std::move(rule));
}

Status KnowledgeBase::Load(std::string_view source) {
  ORDLOG_ASSIGN_OR_RETURN(OrderedProgram parsed,
                          ParseProgram(source, pool_));
  for (ComponentId c = 0; c < parsed.NumComponents(); ++c) {
    const Component& component = parsed.component(c);
    if (!HasModule(component.name)) {
      ORDLOG_RETURN_IF_ERROR(AddModule(component.name));
    }
    for (const Rule& rule : component.rules) {
      ORDLOG_RETURN_IF_ERROR(AddRule(component.name, rule));
    }
  }
  for (const auto& [lower, higher] : parsed.order_edges()) {
    ORDLOG_RETURN_IF_ERROR(AddIsa(parsed.component(lower).name,
                                  parsed.component(higher).name));
  }
  return Status::Ok();
}

Status KnowledgeBase::Instantiate(std::string_view template_module,
                                  std::string_view instance) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId template_id,
                          ModuleId(template_module));
  // AddModule invalidates; the direct program_ mutations below are covered
  // by that same revision bump (nothing is cached in between).
  ORDLOG_RETURN_IF_ERROR(AddModule(instance));
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId instance_id, ModuleId(instance));

  const SymbolId self = pool_->symbols().Intern("self");
  const TermId identity = pool_->MakeConstant(instance);
  auto rebind_atom = [&](const Atom& atom) {
    Atom rebound;
    rebound.predicate = atom.predicate;
    rebound.args.reserve(atom.args.size());
    for (TermId arg : atom.args) {
      rebound.args.push_back(pool_->ReplaceConstant(arg, self, identity));
    }
    return rebound;
  };
  // Copy first: AddRule on the instance may invalidate nothing here, but
  // the component reference would dangle if the vector reallocated.
  const std::vector<Rule> template_rules =
      program_.component(template_id).rules;
  for (const Rule& rule : template_rules) {
    Rule rebound;
    rebound.head = Literal{rebind_atom(rule.head.atom), rule.head.positive};
    for (const Literal& literal : rule.body) {
      rebound.body.push_back(
          Literal{rebind_atom(literal.atom), literal.positive});
    }
    rebound.constraints = rule.constraints;
    ORDLOG_RETURN_IF_ERROR(program_.AddRule(instance_id, std::move(rebound)));
  }
  // The instance inherits from the template's parents, not the template:
  // the schema's `self` rules would otherwise flow in un-rebound.
  const std::vector<std::pair<ComponentId, ComponentId>> edges =
      program_.order_edges();
  for (const auto& [lower, higher] : edges) {
    if (lower == template_id) {
      ORDLOG_RETURN_IF_ERROR(program_.AddOrder(instance_id, higher));
    }
  }
  return Status::Ok();
}

StatusOr<MutationReport> KnowledgeBase::Apply(const Mutation& mutation) {
  // Parse and resolve the whole batch before touching anything, so the
  // common error cases (unknown module, syntax error) leave the KB and its
  // caches untouched.
  struct ParsedOp {
    Mutation::Op::Kind kind = Mutation::Op::Kind::kAddFact;
    ComponentId component = 0;
    Rule rule;
  };
  std::vector<ParsedOp> parsed;
  parsed.reserve(mutation.ops().size());
  for (const Mutation::Op& op : mutation.ops()) {
    ParsedOp p;
    p.kind = op.kind;
    ORDLOG_ASSIGN_OR_RETURN(p.component, ModuleId(op.module));
    if (op.kind == Mutation::Op::Kind::kAddRule) {
      ORDLOG_ASSIGN_OR_RETURN(p.rule, ParseRule(op.text, *pool_));
    } else {
      ORDLOG_ASSIGN_OR_RETURN(Literal literal, ParseLiteral(op.text, *pool_));
      p.rule.head = std::move(literal);
    }
    parsed.push_back(std::move(p));
  }

  MutationReport report;
  std::string ineligible;
  if (!ground_.has_value()) {
    ineligible = "no cached ground program to patch";
  } else if (mutation.has_retraction()) {
    ineligible = "retraction invalidates cached ground instances";
  } else if (options_.strategy != GroundStrategy::kIndexed) {
    ineligible = "delta grounding requires the indexed strategy";
  } else if (options_.prune_unreachable) {
    ineligible = "delta grounding is incompatible with reachability pruning";
  } else if (options_.herbrand.max_function_depth != 0) {
    ineligible = "delta grounding requires max_function_depth == 0";
  }

  if (ineligible.empty()) {
    // Incremental path: patch the cached ground program, then append the
    // rules to the source program so both tell the same story.
    std::vector<DeltaRule> delta;
    delta.reserve(parsed.size());
    std::unordered_map<ComponentId, uint32_t> pending;
    for (const ParsedOp& p : parsed) {
      DeltaRule d;
      d.component = p.component;
      d.source_rule_index = static_cast<uint32_t>(
          program_.component(p.component).rules.size() +
          pending[p.component]++);
      d.rule = p.rule;
      delta.push_back(std::move(d));
    }
    StatusOr<DeltaResult> result =
        DeltaGrounder::Apply(program_, delta, options_, &ground_.value());
    for (ParsedOp& p : parsed) {
      ORDLOG_RETURN_IF_ERROR(program_.AddRule(p.component, std::move(p.rule)));
    }
    if (!result.ok()) {
      // The patch may be half applied; drop it and every model cache. The
      // program mutations above already happened, so the KB is exactly "as
      // if built cold with the new rules".
      Invalidate();
      report.revision = revision_;
      report.fallback_reason =
          StrCat("delta grounding failed: ", result.status().message());
      report.affected_views = DynamicBitset(program_.NumComponents());
      for (ComponentId c = 0; c < program_.NumComponents(); ++c) {
        report.affected_views.Set(c);
        report.affected_modules.push_back(program_.component(c).name);
      }
      return report;
    }
    ++revision_;
    report.incremental = true;
    report.revision = revision_;
    report.delta_rules = result->rules_added;
    report.delta_atoms = result->atoms_added;
    report.new_constants = result->new_terms;
    report.delta_candidates = result->candidates;

    // Dependency cone of the batch: head predicates of the new rules,
    // plus — when the universe grew — every head that a new constant can
    // reach without passing through a body atom
    // (docs/INCREMENTAL.md#new-constants).
    const DepGraph graph = DepGraph::Build(program_);
    std::vector<SymbolId> seeds;
    for (const DeltaRule& d : delta) {
      seeds.push_back(d.rule.head.atom.predicate);
    }
    if (result->new_terms > 0) {
      const std::vector<SymbolId>& extra = graph.HeadOnlyVarPredicates();
      seeds.insert(seeds.end(), extra.begin(), extra.end());
    }
    const std::vector<SymbolId> cone = graph.Cone(seeds);
    const std::unordered_set<SymbolId> cone_set(cone.begin(), cone.end());
    report.cone = cone;
    for (SymbolId predicate : cone) {
      report.touched_predicates.push_back(
          std::string(pool_->symbols().Name(predicate)));
    }

    // A view is affected iff it sees some component that received delta
    // rules; every other view's ground(C*) is unchanged, so its models
    // survive verbatim (modulo resizing to the grown atom universe).
    const GroundProgram& patched = *ground_;
    report.affected_views = DynamicBitset(patched.NumComponents());
    for (ComponentId v = 0; v < patched.NumComponents(); ++v) {
      for (ComponentId b = 0; b < patched.NumComponents(); ++b) {
        if (result->touched_components.Test(b) && patched.Leq(v, b)) {
          report.affected_views.Set(v);
          report.affected_modules.push_back(program_.component(v).name);
          break;
        }
      }
    }

    // Cache maintenance. Affected views trade their cached least model for
    // a warm-start seed (the model restricted to predicates outside the
    // cone — still a subset of the new least model); unaffected entries are
    // kept, resized to the grown atom universe.
    for (auto it = least_models_.begin(); it != least_models_.end();) {
      if (report.affected_views.Test(it->first)) {
        Interpretation seed = Interpretation::ForProgram(patched);
        for (const GroundLiteral& literal : it->second.Literals()) {
          if (cone_set.count(patched.atom(literal.atom).predicate) == 0) {
            seed.Add(literal);
          }
        }
        warm_seeds_.insert_or_assign(it->first, std::move(seed));
        it = least_models_.erase(it);
      } else {
        it->second.Resize(patched.NumAtoms());
        ++it;
      }
    }
    for (auto it = stable_models_.begin(); it != stable_models_.end();) {
      if (report.affected_views.Test(it->first)) {
        it = stable_models_.erase(it);
      } else {
        for (Interpretation& model : it->second) {
          model.Resize(patched.NumAtoms());
        }
        ++it;
      }
    }
    // Seeds left by an earlier batch: still subsets of the current least
    // model for unaffected views; affected views additionally shed the new
    // cone (what was outside the old cone and the new cone never changed).
    for (auto& [view, seed] : warm_seeds_) {
      seed.Resize(patched.NumAtoms());
      if (!report.affected_views.Test(view)) continue;
      Interpretation restricted = Interpretation::ForProgram(patched);
      for (const GroundLiteral& literal : seed.Literals()) {
        if (cone_set.count(patched.atom(literal.atom).predicate) == 0) {
          restricted.Add(literal);
        }
      }
      seed = std::move(restricted);
    }
    report.warm_seeded_views = 0;
    for (const auto& [view, seed] : warm_seeds_) {
      if (report.affected_views.Test(view)) ++report.warm_seeded_views;
    }
    return report;
  }

  // Full path: plain program mutations under one revision bump; every
  // cache is dropped.
  Invalidate();
  for (ParsedOp& p : parsed) {
    if (p.kind == Mutation::Op::Kind::kRetractFact) {
      ORDLOG_RETURN_IF_ERROR(program_.RemoveRule(p.component, p.rule));
    } else {
      ORDLOG_RETURN_IF_ERROR(program_.AddRule(p.component, std::move(p.rule)));
    }
  }
  report.revision = revision_;
  report.fallback_reason = std::move(ineligible);
  report.affected_views = DynamicBitset(program_.NumComponents());
  for (ComponentId c = 0; c < program_.NumComponents(); ++c) {
    report.affected_views.Set(c);
    report.affected_modules.push_back(program_.component(c).name);
  }
  return report;
}

std::vector<std::string> KnowledgeBase::ListModules() const {
  std::vector<std::string> names;
  names.reserve(program_.NumComponents());
  for (ComponentId c = 0; c < program_.NumComponents(); ++c) {
    names.push_back(program_.component(c).name);
  }
  return names;
}

StatusOr<std::vector<std::string>> KnowledgeBase::ModuleRules(
    std::string_view module) const {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  std::vector<std::string> rendered;
  for (const Rule& rule : program_.component(id).rules) {
    rendered.push_back(ToString(*pool_, rule));
  }
  return rendered;
}

StatusOr<std::vector<std::string>> KnowledgeBase::Parents(
    std::string_view module) const {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  std::vector<std::string> names;
  for (const auto& [lower, higher] : program_.order_edges()) {
    if (lower == id) names.push_back(program_.component(higher).name);
  }
  return names;
}

StatusOr<const GroundProgram*> KnowledgeBase::ground() {
  return ground(nullptr, nullptr);
}

StatusOr<const GroundProgram*> KnowledgeBase::ground(
    const CancelToken* cancel, GroundStats* stats) {
  if (stats != nullptr) *stats = GroundStats{};
  if (!ground_.has_value()) {
    ORDLOG_RETURN_IF_ERROR(program_.Finalize());
    GrounderOptions options = options_;
    if (cancel != nullptr) options.cancel = cancel;
    if (stats != nullptr) options.stats = stats;
    ORDLOG_ASSIGN_OR_RETURN(GroundProgram ground_program,
                            Grounder::Ground(program_, options));
    ground_ = std::move(ground_program);
  }
  return &ground_.value();
}

StatusOr<std::optional<GroundLiteral>> KnowledgeBase::ResolveLiteral(
    std::string_view literal_text) {
  ORDLOG_ASSIGN_OR_RETURN(const Literal literal,
                          ParseLiteral(literal_text, *pool_));
  if (!literal.IsGround(*pool_)) {
    return InvalidArgumentError(
        StrCat("query literal '", literal_text, "' must be ground"));
  }
  ORDLOG_ASSIGN_OR_RETURN(const GroundProgram* ground_program, ground());
  const std::optional<GroundAtomId> atom =
      ground_program->FindAtom(literal.atom);
  if (!atom.has_value()) return std::optional<GroundLiteral>();
  return std::optional<GroundLiteral>(
      GroundLiteral{*atom, literal.positive});
}

StatusOr<const Interpretation*> KnowledgeBase::LeastModel(
    ComponentId module) {
  auto it = least_models_.find(module);
  if (it == least_models_.end()) {
    ORDLOG_ASSIGN_OR_RETURN(const GroundProgram* ground_program, ground());
    auto seed_it = warm_seeds_.find(module);
    if (seed_it != warm_seeds_.end()) {
      const Interpretation seed = std::move(seed_it->second);
      warm_seeds_.erase(seed_it);
      LeastModelComputer computer(*ground_program, module);
      StatusOr<Interpretation> warm = computer.ComputeFrom(seed, nullptr);
      if (warm.ok()) {
        it = least_models_.emplace(module, std::move(warm).value()).first;
        return &it->second;
      }
      // A rejected seed means the subset invariant was violated upstream;
      // a cold fixpoint below is always sound, so recover silently.
    }
    it = least_models_
             .emplace(module, ComputeLeastModel(*ground_program, module))
             .first;
  }
  return &it->second;
}

StatusOr<const std::vector<Interpretation>*> KnowledgeBase::StableModels(
    ComponentId module) {
  auto it = stable_models_.find(module);
  if (it == stable_models_.end()) {
    ORDLOG_ASSIGN_OR_RETURN(const GroundProgram* ground_program, ground());
    StableModelSolver solver(*ground_program, module);
    ORDLOG_ASSIGN_OR_RETURN(std::vector<Interpretation> models,
                            solver.StableModels());
    it = stable_models_.emplace(module, std::move(models)).first;
  }
  return &it->second;
}

StatusOr<TruthValue> KnowledgeBase::Query(std::string_view module,
                                          std::string_view literal_text) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  ORDLOG_ASSIGN_OR_RETURN(const std::optional<GroundLiteral> literal,
                          ResolveLiteral(literal_text));
  if (!literal.has_value()) return TruthValue::kUndefined;
  ORDLOG_ASSIGN_OR_RETURN(const Interpretation* model, LeastModel(id));
  return model->Value(*literal);
}

StatusOr<std::vector<std::string>> KnowledgeBase::DerivableFacts(
    std::string_view module) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  ORDLOG_ASSIGN_OR_RETURN(const GroundProgram* ground_program, ground());
  ORDLOG_ASSIGN_OR_RETURN(const Interpretation* model, LeastModel(id));
  std::vector<std::string> facts;
  for (const GroundLiteral& literal : model->Literals()) {
    facts.push_back(ground_program->LiteralToString(literal));
  }
  return facts;
}

StatusOr<std::vector<std::string>> KnowledgeBase::QueryAll(
    std::string_view module, std::string_view pattern_text) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  ORDLOG_ASSIGN_OR_RETURN(const Literal pattern,
                          ParseLiteral(pattern_text, *pool_));
  ORDLOG_ASSIGN_OR_RETURN(const GroundProgram* ground_program, ground());
  ORDLOG_ASSIGN_OR_RETURN(const Interpretation* model, LeastModel(id));
  std::vector<std::string> results;
  for (const GroundLiteral& literal : model->Literals()) {
    if (literal.positive != pattern.positive) continue;
    if (MatchAtom(*pool_, pattern.atom,
                  ground_program->atom(literal.atom))
            .has_value()) {
      results.push_back(ground_program->LiteralToString(literal));
    }
  }
  return results;
}

StatusOr<bool> KnowledgeBase::BravelyHolds(std::string_view module,
                                           std::string_view literal_text) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  ORDLOG_ASSIGN_OR_RETURN(const std::optional<GroundLiteral> literal,
                          ResolveLiteral(literal_text));
  if (!literal.has_value()) return false;
  ORDLOG_ASSIGN_OR_RETURN(const std::vector<Interpretation>* models,
                          StableModels(id));
  for (const Interpretation& model : *models) {
    if (model.Contains(*literal)) return true;
  }
  return false;
}

StatusOr<bool> KnowledgeBase::CautiouslyHolds(std::string_view module,
                                              std::string_view literal_text) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  ORDLOG_ASSIGN_OR_RETURN(const std::optional<GroundLiteral> literal,
                          ResolveLiteral(literal_text));
  ORDLOG_ASSIGN_OR_RETURN(const std::vector<Interpretation>* models,
                          StableModels(id));
  if (!literal.has_value()) return models->empty();
  for (const Interpretation& model : *models) {
    if (!model.Contains(*literal)) return false;
  }
  return true;
}

StatusOr<size_t> KnowledgeBase::CountStableModels(std::string_view module) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  ORDLOG_ASSIGN_OR_RETURN(const std::vector<Interpretation>* models,
                          StableModels(id));
  return models->size();
}

StatusOr<std::string> KnowledgeBase::Explain(std::string_view module,
                                             std::string_view literal_text) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  ORDLOG_ASSIGN_OR_RETURN(const std::optional<GroundLiteral> literal,
                          ResolveLiteral(literal_text));
  ORDLOG_ASSIGN_OR_RETURN(const GroundProgram* ground_program, ground());
  if (!literal.has_value()) {
    return StrCat("'", literal_text,
                  "' does not occur in the knowledge base\n");
  }
  ORDLOG_ASSIGN_OR_RETURN(const Interpretation* model, LeastModel(id));
  Explainer explainer(*ground_program, id, *model);
  return explainer.Explain(*literal);
}

StatusOr<std::string> KnowledgeBase::ExplainJson(
    std::string_view module, std::string_view literal_text) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  ORDLOG_ASSIGN_OR_RETURN(const std::optional<GroundLiteral> literal,
                          ResolveLiteral(literal_text));
  ORDLOG_ASSIGN_OR_RETURN(const GroundProgram* ground_program, ground());
  if (!literal.has_value()) {
    return StrCat("{\"query\":", JsonQuote(literal_text),
                  ",\"module\":", JsonQuote(module),
                  ",\"truth\":\"undefined\",\"unknown\":true}");
  }
  ORDLOG_ASSIGN_OR_RETURN(const Interpretation* model, LeastModel(id));
  DerivationBuilder builder(*ground_program, id, *model);
  return builder.ToJson(*literal);
}

}  // namespace ordlog
