#include "kb/knowledge_base.h"

#include "base/strings.h"
#include "core/least_model.h"
#include "lang/match.h"
#include "lang/printer.h"
#include "core/stable_solver.h"
#include "kb/derivation.h"
#include "kb/explain.h"
#include "parser/parser.h"
#include "trace/json.h"

namespace ordlog {

KnowledgeBase::KnowledgeBase() : KnowledgeBase(GrounderOptions{}) {}

KnowledgeBase::KnowledgeBase(GrounderOptions options)
    : options_(options),
      pool_(std::make_shared<TermPool>()),
      program_(pool_) {}

void KnowledgeBase::Invalidate() {
  ++revision_;
  ground_.reset();
  least_models_.clear();
  stable_models_.clear();
}

Status KnowledgeBase::AddModule(std::string_view name) {
  Invalidate();
  const StatusOr<ComponentId> result =
      program_.AddComponent(std::string(name));
  return result.ok() ? Status::Ok() : result.status();
}

bool KnowledgeBase::HasModule(std::string_view name) const {
  return program_.FindComponent(name).ok();
}

StatusOr<ComponentId> KnowledgeBase::ModuleId(std::string_view name) const {
  return program_.FindComponent(name);
}

Status KnowledgeBase::AddIsa(std::string_view child,
                             std::string_view parent) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId child_id, ModuleId(child));
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId parent_id, ModuleId(parent));
  Invalidate();
  return program_.AddOrder(child_id, parent_id);
}

Status KnowledgeBase::AddRuleText(std::string_view module,
                                  std::string_view rule_text) {
  ORDLOG_ASSIGN_OR_RETURN(Rule rule, ParseRule(rule_text, *pool_));
  return AddRule(module, std::move(rule));
}

Status KnowledgeBase::AddRule(std::string_view module, Rule rule) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  Invalidate();
  return program_.AddRule(id, std::move(rule));
}

Status KnowledgeBase::Load(std::string_view source) {
  ORDLOG_ASSIGN_OR_RETURN(OrderedProgram parsed,
                          ParseProgram(source, pool_));
  for (ComponentId c = 0; c < parsed.NumComponents(); ++c) {
    const Component& component = parsed.component(c);
    if (!HasModule(component.name)) {
      ORDLOG_RETURN_IF_ERROR(AddModule(component.name));
    }
    for (const Rule& rule : component.rules) {
      ORDLOG_RETURN_IF_ERROR(AddRule(component.name, rule));
    }
  }
  for (const auto& [lower, higher] : parsed.order_edges()) {
    ORDLOG_RETURN_IF_ERROR(AddIsa(parsed.component(lower).name,
                                  parsed.component(higher).name));
  }
  return Status::Ok();
}

Status KnowledgeBase::Instantiate(std::string_view template_module,
                                  std::string_view instance) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId template_id,
                          ModuleId(template_module));
  // AddModule invalidates; the direct program_ mutations below are covered
  // by that same revision bump (nothing is cached in between).
  ORDLOG_RETURN_IF_ERROR(AddModule(instance));
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId instance_id, ModuleId(instance));

  const SymbolId self = pool_->symbols().Intern("self");
  const TermId identity = pool_->MakeConstant(instance);
  auto rebind_atom = [&](const Atom& atom) {
    Atom rebound;
    rebound.predicate = atom.predicate;
    rebound.args.reserve(atom.args.size());
    for (TermId arg : atom.args) {
      rebound.args.push_back(pool_->ReplaceConstant(arg, self, identity));
    }
    return rebound;
  };
  // Copy first: AddRule on the instance may invalidate nothing here, but
  // the component reference would dangle if the vector reallocated.
  const std::vector<Rule> template_rules =
      program_.component(template_id).rules;
  for (const Rule& rule : template_rules) {
    Rule rebound;
    rebound.head = Literal{rebind_atom(rule.head.atom), rule.head.positive};
    for (const Literal& literal : rule.body) {
      rebound.body.push_back(
          Literal{rebind_atom(literal.atom), literal.positive});
    }
    rebound.constraints = rule.constraints;
    ORDLOG_RETURN_IF_ERROR(program_.AddRule(instance_id, std::move(rebound)));
  }
  // The instance inherits from the template's parents, not the template:
  // the schema's `self` rules would otherwise flow in un-rebound.
  const std::vector<std::pair<ComponentId, ComponentId>> edges =
      program_.order_edges();
  for (const auto& [lower, higher] : edges) {
    if (lower == template_id) {
      ORDLOG_RETURN_IF_ERROR(program_.AddOrder(instance_id, higher));
    }
  }
  return Status::Ok();
}

std::vector<std::string> KnowledgeBase::ListModules() const {
  std::vector<std::string> names;
  names.reserve(program_.NumComponents());
  for (ComponentId c = 0; c < program_.NumComponents(); ++c) {
    names.push_back(program_.component(c).name);
  }
  return names;
}

StatusOr<std::vector<std::string>> KnowledgeBase::ModuleRules(
    std::string_view module) const {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  std::vector<std::string> rendered;
  for (const Rule& rule : program_.component(id).rules) {
    rendered.push_back(ToString(*pool_, rule));
  }
  return rendered;
}

StatusOr<std::vector<std::string>> KnowledgeBase::Parents(
    std::string_view module) const {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  std::vector<std::string> names;
  for (const auto& [lower, higher] : program_.order_edges()) {
    if (lower == id) names.push_back(program_.component(higher).name);
  }
  return names;
}

StatusOr<const GroundProgram*> KnowledgeBase::ground() {
  return ground(nullptr, nullptr);
}

StatusOr<const GroundProgram*> KnowledgeBase::ground(
    const CancelToken* cancel, GroundStats* stats) {
  if (stats != nullptr) *stats = GroundStats{};
  if (!ground_.has_value()) {
    ORDLOG_RETURN_IF_ERROR(program_.Finalize());
    GrounderOptions options = options_;
    if (cancel != nullptr) options.cancel = cancel;
    if (stats != nullptr) options.stats = stats;
    ORDLOG_ASSIGN_OR_RETURN(GroundProgram ground_program,
                            Grounder::Ground(program_, options));
    ground_ = std::move(ground_program);
  }
  return &ground_.value();
}

StatusOr<std::optional<GroundLiteral>> KnowledgeBase::ResolveLiteral(
    std::string_view literal_text) {
  ORDLOG_ASSIGN_OR_RETURN(const Literal literal,
                          ParseLiteral(literal_text, *pool_));
  if (!literal.IsGround(*pool_)) {
    return InvalidArgumentError(
        StrCat("query literal '", literal_text, "' must be ground"));
  }
  ORDLOG_ASSIGN_OR_RETURN(const GroundProgram* ground_program, ground());
  const std::optional<GroundAtomId> atom =
      ground_program->FindAtom(literal.atom);
  if (!atom.has_value()) return std::optional<GroundLiteral>();
  return std::optional<GroundLiteral>(
      GroundLiteral{*atom, literal.positive});
}

StatusOr<const Interpretation*> KnowledgeBase::LeastModel(
    ComponentId module) {
  auto it = least_models_.find(module);
  if (it == least_models_.end()) {
    ORDLOG_ASSIGN_OR_RETURN(const GroundProgram* ground_program, ground());
    it = least_models_
             .emplace(module, ComputeLeastModel(*ground_program, module))
             .first;
  }
  return &it->second;
}

StatusOr<const std::vector<Interpretation>*> KnowledgeBase::StableModels(
    ComponentId module) {
  auto it = stable_models_.find(module);
  if (it == stable_models_.end()) {
    ORDLOG_ASSIGN_OR_RETURN(const GroundProgram* ground_program, ground());
    StableModelSolver solver(*ground_program, module);
    ORDLOG_ASSIGN_OR_RETURN(std::vector<Interpretation> models,
                            solver.StableModels());
    it = stable_models_.emplace(module, std::move(models)).first;
  }
  return &it->second;
}

StatusOr<TruthValue> KnowledgeBase::Query(std::string_view module,
                                          std::string_view literal_text) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  ORDLOG_ASSIGN_OR_RETURN(const std::optional<GroundLiteral> literal,
                          ResolveLiteral(literal_text));
  if (!literal.has_value()) return TruthValue::kUndefined;
  ORDLOG_ASSIGN_OR_RETURN(const Interpretation* model, LeastModel(id));
  return model->Value(*literal);
}

StatusOr<std::vector<std::string>> KnowledgeBase::DerivableFacts(
    std::string_view module) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  ORDLOG_ASSIGN_OR_RETURN(const GroundProgram* ground_program, ground());
  ORDLOG_ASSIGN_OR_RETURN(const Interpretation* model, LeastModel(id));
  std::vector<std::string> facts;
  for (const GroundLiteral& literal : model->Literals()) {
    facts.push_back(ground_program->LiteralToString(literal));
  }
  return facts;
}

StatusOr<std::vector<std::string>> KnowledgeBase::QueryAll(
    std::string_view module, std::string_view pattern_text) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  ORDLOG_ASSIGN_OR_RETURN(const Literal pattern,
                          ParseLiteral(pattern_text, *pool_));
  ORDLOG_ASSIGN_OR_RETURN(const GroundProgram* ground_program, ground());
  ORDLOG_ASSIGN_OR_RETURN(const Interpretation* model, LeastModel(id));
  std::vector<std::string> results;
  for (const GroundLiteral& literal : model->Literals()) {
    if (literal.positive != pattern.positive) continue;
    if (MatchAtom(*pool_, pattern.atom,
                  ground_program->atom(literal.atom))
            .has_value()) {
      results.push_back(ground_program->LiteralToString(literal));
    }
  }
  return results;
}

StatusOr<bool> KnowledgeBase::BravelyHolds(std::string_view module,
                                           std::string_view literal_text) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  ORDLOG_ASSIGN_OR_RETURN(const std::optional<GroundLiteral> literal,
                          ResolveLiteral(literal_text));
  if (!literal.has_value()) return false;
  ORDLOG_ASSIGN_OR_RETURN(const std::vector<Interpretation>* models,
                          StableModels(id));
  for (const Interpretation& model : *models) {
    if (model.Contains(*literal)) return true;
  }
  return false;
}

StatusOr<bool> KnowledgeBase::CautiouslyHolds(std::string_view module,
                                              std::string_view literal_text) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  ORDLOG_ASSIGN_OR_RETURN(const std::optional<GroundLiteral> literal,
                          ResolveLiteral(literal_text));
  ORDLOG_ASSIGN_OR_RETURN(const std::vector<Interpretation>* models,
                          StableModels(id));
  if (!literal.has_value()) return models->empty();
  for (const Interpretation& model : *models) {
    if (!model.Contains(*literal)) return false;
  }
  return true;
}

StatusOr<size_t> KnowledgeBase::CountStableModels(std::string_view module) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  ORDLOG_ASSIGN_OR_RETURN(const std::vector<Interpretation>* models,
                          StableModels(id));
  return models->size();
}

StatusOr<std::string> KnowledgeBase::Explain(std::string_view module,
                                             std::string_view literal_text) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  ORDLOG_ASSIGN_OR_RETURN(const std::optional<GroundLiteral> literal,
                          ResolveLiteral(literal_text));
  ORDLOG_ASSIGN_OR_RETURN(const GroundProgram* ground_program, ground());
  if (!literal.has_value()) {
    return StrCat("'", literal_text,
                  "' does not occur in the knowledge base\n");
  }
  ORDLOG_ASSIGN_OR_RETURN(const Interpretation* model, LeastModel(id));
  Explainer explainer(*ground_program, id, *model);
  return explainer.Explain(*literal);
}

StatusOr<std::string> KnowledgeBase::ExplainJson(
    std::string_view module, std::string_view literal_text) {
  ORDLOG_ASSIGN_OR_RETURN(const ComponentId id, ModuleId(module));
  ORDLOG_ASSIGN_OR_RETURN(const std::optional<GroundLiteral> literal,
                          ResolveLiteral(literal_text));
  ORDLOG_ASSIGN_OR_RETURN(const GroundProgram* ground_program, ground());
  if (!literal.has_value()) {
    return StrCat("{\"query\":", JsonQuote(literal_text),
                  ",\"module\":", JsonQuote(module),
                  ",\"truth\":\"undefined\",\"unknown\":true}");
  }
  ORDLOG_ASSIGN_OR_RETURN(const Interpretation* model, LeastModel(id));
  DerivationBuilder builder(*ground_program, id, *model);
  return builder.ToJson(*literal);
}

}  // namespace ordlog
