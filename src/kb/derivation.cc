#include "kb/derivation.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "base/strings.h"
#include "core/v_operator.h"
#include "trace/event.h"
#include "trace/json.h"

namespace ordlog {

std::string GroundRuleToString(const GroundProgram& program,
                               const GroundRule& rule) {
  std::ostringstream os;
  os << program.LiteralToString(rule.head);
  if (!rule.body.empty()) {
    os << " :- "
       << StrJoin(rule.body, ", ",
                  [&program](std::ostringstream& s, GroundLiteral literal) {
                    s << program.LiteralToString(literal);
                  });
  }
  os << " [" << program.component_name(rule.component) << "]";
  return os.str();
}

std::vector<int> DerivationRanks(const GroundProgram& program,
                                 ComponentId view) {
  std::vector<int> rank(program.NumAtoms(), -1);
  VOperator v(program, view);
  Interpretation current = Interpretation::ForProgram(program);
  int round = 0;
  while (true) {
    Interpretation next = v.Apply(current);
    if (next == current) break;
    ++round;
    for (const GroundLiteral& literal : next.Literals()) {
      if (rank[literal.atom] < 0) rank[literal.atom] = round;
    }
    current = std::move(next);
  }
  return rank;
}

DerivationBuilder::DerivationBuilder(const GroundProgram& program,
                                     ComponentId view,
                                     const Interpretation& least_model)
    : program_(program),
      view_(view),
      model_(least_model),
      evaluator_(program, view),
      rank_(DerivationRanks(program, view)) {}

void DerivationBuilder::AppendRuleDiagnosis(
    uint32_t rule_index, std::vector<RuleDiagnosis>* out) const {
  const GroundRule& rule = program_.rule(rule_index);
  if (!program_.Leq(view_, rule.component)) return;
  RuleDiagnosis diag;
  diag.rule_index = rule_index;
  std::optional<RuleStatusEvaluator::Silencer> silencer;
  diag.status = evaluator_.StatusCode(rule, model_, &silencer);
  diag.silencer = silencer;
  for (const GroundLiteral& literal : rule.body) {
    if (model_.Contains(literal) || model_.ContainsComplement(literal)) {
      continue;
    }
    if (std::find(diag.undefined_body.begin(), diag.undefined_body.end(),
                  literal.atom) == diag.undefined_body.end()) {
      diag.undefined_body.push_back(literal.atom);
    }
  }
  out->push_back(std::move(diag));
}

std::vector<DerivationBuilder::RuleDiagnosis> DerivationBuilder::DiagnoseAtom(
    GroundAtomId atom) const {
  std::vector<RuleDiagnosis> out;
  for (const bool positive : {true, false}) {
    for (uint32_t index : program_.RulesWithHead(atom, positive)) {
      AppendRuleDiagnosis(index, &out);
    }
  }
  return out;
}

std::vector<DerivationBuilder::RuleDiagnosis> DerivationBuilder::DiagnoseHead(
    GroundLiteral head) const {
  std::vector<RuleDiagnosis> out;
  for (uint32_t index : program_.RulesWithHead(head.atom, head.positive)) {
    AppendRuleDiagnosis(index, &out);
  }
  return out;
}

void DerivationBuilder::TreeToJson(GroundLiteral literal,
                                   std::ostream& os) const {
  // Pick an applied, non-silenced rule whose body was derived strictly
  // earlier in the V chain (the same choice Explainer makes, so the text
  // and JSON explanations agree).
  const GroundRule* chosen = nullptr;
  for (uint32_t index :
       program_.RulesWithHead(literal.atom, literal.positive)) {
    const GroundRule& rule = program_.rule(index);
    if (!program_.Leq(view_, rule.component)) continue;
    if (!evaluator_.IsApplied(rule, model_)) continue;
    if (evaluator_.IsSilenced(rule, model_)) continue;
    bool body_earlier = true;
    for (const GroundLiteral& body_literal : rule.body) {
      if (rank_[body_literal.atom] >= rank_[literal.atom]) {
        body_earlier = false;
        break;
      }
    }
    if (body_earlier) {
      chosen = &rule;
      break;
    }
  }
  os << "{\"literal\":" << JsonQuote(program_.LiteralToString(literal));
  if (chosen == nullptr) {
    // Shouldn't happen for literals of the least model; degrade gracefully.
    os << ",\"rule\":null}";
    return;
  }
  os << ",\"rule\":" << JsonQuote(GroundRuleToString(program_, *chosen))
     << ",\"component\":"
     << JsonQuote(program_.component_name(chosen->component))
     << ",\"fact\":" << (chosen->body.empty() ? "true" : "false");
  if (!chosen->body.empty()) {
    os << ",\"body\":[";
    for (size_t i = 0; i < chosen->body.size(); ++i) {
      if (i > 0) os << ',';
      TreeToJson(chosen->body[i], os);
    }
    os << ']';
  }
  os << '}';
}

void DerivationBuilder::DiagnosesToJson(
    const std::vector<RuleDiagnosis>& diagnoses, std::ostream& os) const {
  os << '[';
  for (size_t i = 0; i < diagnoses.size(); ++i) {
    if (i > 0) os << ',';
    const RuleDiagnosis& diag = diagnoses[i];
    const GroundRule& rule = program_.rule(diag.rule_index);
    os << "{\"rule\":" << JsonQuote(GroundRuleToString(program_, rule))
       << ",\"component\":"
       << JsonQuote(program_.component_name(rule.component))
       << ",\"status\":" << JsonQuote(RuleStatusCodeName(diag.status));
    if (diag.silencer.has_value()) {
      const GroundRule& by = program_.rule(diag.silencer->rule_index);
      os << ",\"by_rule\":" << JsonQuote(GroundRuleToString(program_, by))
         << ",\"by_component\":"
         << JsonQuote(program_.component_name(by.component));
    }
    if (!diag.undefined_body.empty()) {
      os << ",\"undefined_body\":[";
      for (size_t j = 0; j < diag.undefined_body.size(); ++j) {
        if (j > 0) os << ',';
        os << JsonQuote(program_.AtomToString(diag.undefined_body[j]));
      }
      os << ']';
    }
    os << '}';
  }
  os << ']';
}

std::string DerivationBuilder::ToJson(GroundLiteral literal) const {
  std::ostringstream os;
  os << "{\"query\":" << JsonQuote(program_.LiteralToString(literal))
     << ",\"module\":" << JsonQuote(program_.component_name(view_));
  if (model_.Contains(literal)) {
    os << ",\"truth\":\"true\",\"derivation\":";
    TreeToJson(literal, os);
    os << ",\"counter_rules\":";
    DiagnosesToJson(DiagnoseHead(literal.Complement()), os);
  } else if (model_.ContainsComplement(literal)) {
    os << ",\"truth\":\"false\",\"complement\":"
       << JsonQuote(program_.LiteralToString(literal.Complement()))
       << ",\"derivation\":";
    TreeToJson(literal.Complement(), os);
    os << ",\"counter_rules\":";
    DiagnosesToJson(DiagnoseHead(literal), os);
  } else {
    // Breadth-first closure of the undefined region reachable from the
    // query atom through undefined body atoms (discovery order, so the
    // output is deterministic).
    os << ",\"truth\":\"undefined\",\"undefined\":[";
    std::vector<GroundAtomId> queue{literal.atom};
    std::vector<bool> visited(program_.NumAtoms(), false);
    visited[literal.atom] = true;
    for (size_t head = 0; head < queue.size(); ++head) {
      const GroundAtomId atom = queue[head];
      const std::vector<RuleDiagnosis> diagnoses = DiagnoseAtom(atom);
      if (head > 0) os << ',';
      os << "{\"atom\":" << JsonQuote(program_.AtomToString(atom))
         << ",\"rules\":";
      DiagnosesToJson(diagnoses, os);
      os << '}';
      for (const RuleDiagnosis& diag : diagnoses) {
        for (const GroundAtomId next : diag.undefined_body) {
          if (!visited[next]) {
            visited[next] = true;
            queue.push_back(next);
          }
        }
      }
    }
    os << ']';
  }
  os << '}';
  return os.str();
}

}  // namespace ordlog
