#ifndef ORDLOG_KB_EXPLAIN_H_
#define ORDLOG_KB_EXPLAIN_H_

#include <string>

#include "core/interpretation.h"
#include "core/rule_status.h"

namespace ordlog {

// Produces human-readable derivation traces for the least-model semantics
// of one view: why a literal is true (the applied rules deriving it, down
// to facts), or why an atom is undefined (which rules were overruled or
// defeated, and by what).
//
// Truth here is with respect to V∞(∅), the least model (Thm. 1b), which is
// also what KnowledgeBase::Query reports.
class Explainer {
 public:
  // `least_model` must be the V∞ fixpoint for (program, view).
  Explainer(const GroundProgram& program, ComponentId view,
            const Interpretation& least_model);

  // Multi-line explanation of the literal's status in the view.
  std::string Explain(GroundLiteral literal) const;

 private:
  void ExplainTrue(GroundLiteral literal, int indent,
                   std::string* out) const;
  void ExplainUndefined(GroundAtomId atom, int indent,
                        std::string* out) const;
  // Describes why `rule` does not fire under the least model.
  std::string SilenceReason(const GroundRule& rule) const;
  std::string RuleName(const GroundRule& rule) const;

  const GroundProgram& program_;
  const ComponentId view_;
  const Interpretation& model_;
  RuleStatusEvaluator evaluator_;
  // rank_[atom] = V-iteration at which the atom's literal first appeared
  // (guards against cycles when walking derivations).
  std::vector<int> rank_;
};

}  // namespace ordlog

#endif  // ORDLOG_KB_EXPLAIN_H_
