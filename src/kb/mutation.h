#ifndef ORDLOG_KB_MUTATION_H_
#define ORDLOG_KB_MUTATION_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/bitset.h"
#include "lang/symbol_table.h"

namespace ordlog {

// A batch of knowledge-base edits applied atomically by
// KnowledgeBase::Apply. Batching matters for the incremental path: one
// Apply grounds one delta and bumps the revision once, however many facts
// it carries.
class Mutation {
 public:
  struct Op {
    enum class Kind : uint8_t { kAddFact, kRetractFact, kAddRule };
    Kind kind = Kind::kAddFact;
    std::string module;
    std::string text;  // literal source for facts, rule source for rules
  };

  // Asserts the literal (e.g. "penguin(pingu)" or "-fly(pingu)") as a
  // bodyless rule of `module`.
  Mutation& AddFact(std::string_view module, std::string_view literal_text) {
    ops_.push_back(Op{Op::Kind::kAddFact, std::string(module),
                      std::string(literal_text)});
    return *this;
  }
  Mutation& AddFacts(std::string_view module,
                     const std::vector<std::string>& literal_texts) {
    for (const std::string& text : literal_texts) AddFact(module, text);
    return *this;
  }
  // Withdraws a previously asserted fact. Retractions always force a full
  // reground: a cached ground program may hold instances whose constraint
  // pruning or silencing structure assumed the fact's presence.
  Mutation& RetractFact(std::string_view module,
                        std::string_view literal_text) {
    ops_.push_back(Op{Op::Kind::kRetractFact, std::string(module),
                      std::string(literal_text)});
    return *this;
  }
  Mutation& RetractFacts(std::string_view module,
                         const std::vector<std::string>& literal_texts) {
    for (const std::string& text : literal_texts) RetractFact(module, text);
    return *this;
  }
  // Adds one parsed rule, e.g. "fly(X) :- bird(X)." .
  Mutation& AddRule(std::string_view module, std::string_view rule_text) {
    ops_.push_back(Op{Op::Kind::kAddRule, std::string(module),
                      std::string(rule_text)});
    return *this;
  }

  bool empty() const { return ops_.empty(); }
  bool has_retraction() const {
    for (const Op& op : ops_) {
      if (op.kind == Op::Kind::kRetractFact) return true;
    }
    return false;
  }
  const std::vector<Op>& ops() const { return ops_; }

 private:
  std::vector<Op> ops_;
};

// What one KnowledgeBase::Apply did, and how much cached work survived it.
struct MutationReport {
  // KB revision after the batch.
  uint64_t revision = 0;
  // True when the cached ground program was patched in place by the delta
  // grounder; false when the batch forced a full invalidation.
  bool incremental = false;
  // Why the incremental path was not taken (empty when it was).
  std::string fallback_reason;
  // Views whose least/stable models may have changed, as a bitset over
  // component ids and as rendered module names. On the full path every
  // view is marked.
  DynamicBitset affected_views;
  std::vector<std::string> affected_modules;
  // The mutation's dependency cone: every predicate whose extension may
  // have changed in some view (rendered names, sorted). Warm-start seeds
  // are the previous models restricted to predicates outside this cone.
  std::vector<std::string> touched_predicates;
  // The same cone as interned symbol ids (sorted), for callers that hold
  // the pool and build their own restricted seeds (QueryEngine does).
  std::vector<SymbolId> cone;
  // Incremental path only: ground rules/atoms appended, universe terms
  // added, and candidate bindings the delta enumeration attempted.
  size_t delta_rules = 0;
  size_t delta_atoms = 0;
  size_t new_constants = 0;
  uint64_t delta_candidates = 0;
  // Views that received a warm-start seed for their next least-model
  // computation.
  size_t warm_seeded_views = 0;
};

}  // namespace ordlog

#endif  // ORDLOG_KB_MUTATION_H_
