#include "kb/explain.h"

#include "base/strings.h"
#include "kb/derivation.h"

namespace ordlog {

namespace {
std::string Indent(int indent) { return std::string(indent * 2, ' '); }
}  // namespace

Explainer::Explainer(const GroundProgram& program, ComponentId view,
                     const Interpretation& least_model)
    : program_(program),
      view_(view),
      model_(least_model),
      evaluator_(program, view),
      rank_(DerivationRanks(program, view)) {}

std::string Explainer::RuleName(const GroundRule& rule) const {
  return GroundRuleToString(program_, rule);
}

std::string Explainer::SilenceReason(const GroundRule& rule) const {
  const std::optional<RuleStatusEvaluator::Silencer> silencer =
      evaluator_.FindSilencer(rule, model_);
  if (!silencer.has_value()) return "not silenced";
  const GroundRule& other = program_.rule(silencer->rule_index);
  if (silencer->overrules) {
    return StrCat("overruled by more specific rule: ", RuleName(other));
  }
  return StrCat("defeated by conflicting rule: ", RuleName(other));
}

void Explainer::ExplainTrue(GroundLiteral literal, int indent,
                            std::string* out) const {
  // Pick an applied, non-silenced rule whose body was derived earlier.
  const GroundRule* chosen = nullptr;
  for (uint32_t index :
       program_.RulesWithHead(literal.atom, literal.positive)) {
    const GroundRule& rule = program_.rule(index);
    if (!program_.Leq(view_, rule.component)) continue;
    if (!evaluator_.IsApplied(rule, model_)) continue;
    if (evaluator_.IsSilenced(rule, model_)) continue;
    bool body_earlier = true;
    for (const GroundLiteral& body_literal : rule.body) {
      if (rank_[body_literal.atom] >= rank_[literal.atom]) {
        body_earlier = false;
        break;
      }
    }
    if (body_earlier) {
      chosen = &rule;
      break;
    }
  }
  if (chosen == nullptr) {
    // Shouldn't happen for literals of the least model; degrade gracefully.
    *out += StrCat(Indent(indent), program_.LiteralToString(literal),
                   " holds (no applied rule found)\n");
    return;
  }
  if (chosen->body.empty()) {
    *out += StrCat(Indent(indent), program_.LiteralToString(literal),
                   " holds: fact [",
                   program_.component_name(chosen->component), "]\n");
    return;
  }
  *out += StrCat(Indent(indent), program_.LiteralToString(literal),
                 " holds by rule: ", RuleName(*chosen), "\n");
  for (const GroundLiteral& body_literal : chosen->body) {
    ExplainTrue(body_literal, indent + 1, out);
  }
}

void Explainer::ExplainUndefined(GroundAtomId atom, int indent,
                                 std::string* out) const {
  *out += StrCat(Indent(indent), program_.AtomToString(atom),
                 " is undefined\n");
  bool any = false;
  for (const bool positive : {true, false}) {
    for (uint32_t index : program_.RulesWithHead(atom, positive)) {
      const GroundRule& rule = program_.rule(index);
      if (!program_.Leq(view_, rule.component)) continue;
      any = true;
      std::string status;
      if (evaluator_.IsBlocked(rule, model_)) {
        status = "blocked";
      } else if (evaluator_.IsApplicable(rule, model_)) {
        status = SilenceReason(rule);
      } else {
        status = "not applicable";
      }
      *out += StrCat(Indent(indent + 1), "rule ", RuleName(rule), ": ",
                     status, "\n");
    }
  }
  if (!any) {
    *out += StrCat(Indent(indent + 1),
                   "no rule in this module or its ancestors derives it\n");
  }
}

std::string Explainer::Explain(GroundLiteral literal) const {
  std::string out;
  if (model_.Contains(literal)) {
    ExplainTrue(literal, 0, &out);
  } else if (model_.ContainsComplement(literal)) {
    out += StrCat("the complement of ", program_.LiteralToString(literal),
                  " holds:\n");
    ExplainTrue(literal.Complement(), 1, &out);
  } else {
    ExplainUndefined(literal.atom, 0, &out);
  }
  return out;
}

}  // namespace ordlog
