#ifndef ORDLOG_KB_KNOWLEDGE_BASE_H_
#define ORDLOG_KB_KNOWLEDGE_BASE_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "core/interpretation.h"
#include "ground/grounder.h"
#include "kb/mutation.h"
#include "lang/program.h"

namespace ordlog {

// The object-oriented layer of the paper's Section 5: a knowledge base of
// *modules* (objects) connected by an *isa* hierarchy, where more specific
// modules inherit the rules of their ancestors and may overrule them —
// defaults with exceptions. Queries are answered per module.
//
//   KnowledgeBase kb;
//   kb.AddModule("animals");
//   kb.AddRuleText("animals", "fly(X) :- bird(X).");
//   kb.AddModule("antarctic");
//   kb.AddIsa("antarctic", "animals");
//   kb.AddRuleText("antarctic", "-fly(X) :- penguin(X).");
//   ...
//   TruthValue v = kb.Query("antarctic", "fly(pingu)").value();
//
// Skeptical truth is read off the least model V∞ (Thm. 1b: the
// intersection of all models — exactly what is certain). Brave/cautious
// queries range over the stable models (Def. 9).
//
// Mutations invalidate the cached ground program; the next query regrounds
// lazily.
class KnowledgeBase {
 public:
  KnowledgeBase();
  explicit KnowledgeBase(GrounderOptions options);

  // --- construction --------------------------------------------------------
  Status AddModule(std::string_view name);
  bool HasModule(std::string_view name) const;
  // Declares `child` isa `parent` (child < parent: child inherits and may
  // overrule parent rules). Both modules must exist.
  Status AddIsa(std::string_view child, std::string_view parent);
  // Parses and adds one rule, e.g. "fly(X) :- bird(X)." .
  Status AddRuleText(std::string_view module, std::string_view rule_text);
  Status AddRule(std::string_view module, Rule rule);
  // Loads `.olp` source (components become modules, order edges isa links).
  Status Load(std::string_view source);

  // Declares `successor` as a new version of `predecessor`: an isa link,
  // per the paper's observation that "a most specific module can be
  // thought of as the new version of a more general module".
  Status AddVersion(std::string_view successor,
                    std::string_view predecessor) {
    return AddIsa(successor, predecessor);
  }

  // Object identity (the paper's Section 5, citing [K]): creates module
  // `instance` as an identity-bound copy of `template_module` — every
  // occurrence of the reserved constant `self` in the template's rules is
  // replaced by the constant `instance` — and gives the instance the same
  // isa parents as the template. The template itself remains a pure
  // schema. Instances are independent objects: facts asserted into one do
  // not leak into another.
  Status Instantiate(std::string_view template_module,
                     std::string_view instance);

  // --- mutation batches ----------------------------------------------------
  // Applies a batch of edits as one revision bump and reports the damage
  // (docs/INCREMENTAL.md). When the batch is add-only, a ground program is
  // cached, and the grounder options permit it (indexed strategy, no
  // reachability pruning, function depth 0), the cached ground program is
  // patched in place by the delta grounder instead of being dropped; cached
  // least/stable models of views outside the affected set survive, and
  // affected views keep their previous model restricted to predicates
  // outside the dependency cone as a warm-start seed. Retractions and
  // ineligible batches fall back to a full invalidation (the report says
  // why). On error the batch may be partially applied, but every cache is
  // dropped, so subsequent queries are still sound.
  StatusOr<MutationReport> Apply(const Mutation& mutation);

  // --- queries --------------------------------------------------------------
  // Truth of the literal in the module's least model: kTrue if derivable,
  // kFalse if its complement is derivable, kUndefined otherwise.
  StatusOr<TruthValue> Query(std::string_view module,
                             std::string_view literal_text);

  // Every literal of the module's least model, rendered.
  StatusOr<std::vector<std::string>> DerivableFacts(std::string_view module);

  // Pattern query: all literals of the module's least model matching
  // `pattern_text`, which may contain variables, e.g. "fly(X)" or
  // "-fly(X)". Results are rendered ground literals in atom-id order.
  StatusOr<std::vector<std::string>> QueryAll(std::string_view module,
                                              std::string_view pattern_text);

  // Stable-model reasoning (may be exponential; bounded by the solver's
  // node budget).
  StatusOr<bool> BravelyHolds(std::string_view module,
                              std::string_view literal_text);
  StatusOr<bool> CautiouslyHolds(std::string_view module,
                                 std::string_view literal_text);
  StatusOr<size_t> CountStableModels(std::string_view module);

  // Derivation trace / failure diagnosis for the literal (see Explainer).
  StatusOr<std::string> Explain(std::string_view module,
                                std::string_view literal_text);

  // Machine-readable counterpart of Explain: the literal's derivation
  // graph under the module's least model as a single-line JSON object
  // (see DerivationBuilder for the schema). A literal that does not occur
  // in the knowledge base yields {"truth":"undefined","unknown":true}.
  StatusOr<std::string> ExplainJson(std::string_view module,
                                    std::string_view literal_text);

  // --- introspection --------------------------------------------------------
  // Names of all modules, in creation order.
  std::vector<std::string> ListModules() const;
  // Rendered rules of one module.
  StatusOr<std::vector<std::string>> ModuleRules(std::string_view module)
      const;
  // Names of the modules `module` directly inherits from (its declared
  // isa parents, not the transitive closure).
  StatusOr<std::vector<std::string>> Parents(std::string_view module) const;

  // --- plumbing ------------------------------------------------------------
  const OrderedProgram& program() const { return program_; }
  // Grounds if needed and returns the ground program.
  StatusOr<const GroundProgram*> ground();
  // As above, threading a per-call cancellation token into the grounder's
  // enumeration loops (kCancelled/kDeadlineExceeded mid-grounding) and
  // filling `stats` with the run's instantiation counters. Both may be
  // null; when the program is already grounded `stats` is zeroed (the
  // cached snapshot cost nothing).
  StatusOr<const GroundProgram*> ground(const CancelToken* cancel,
                                        GroundStats* stats);

  // Monotone revision counter, bumped by every mutation (AddModule,
  // AddIsa, AddRule, Load, Instantiate). Serving layers (runtime/) key
  // cached ground programs and models by it: a cached entry is valid
  // exactly while the revision it was computed at is still current.
  uint64_t revision() const { return revision_; }

  // The term pool all of this KB's rules and query literals are interned
  // in. Exposed for the runtime layer, which parses query literals against
  // the same pool; parsing mutates the pool, so concurrent users must
  // serialize access (QueryEngine does).
  const std::shared_ptr<TermPool>& shared_pool() const { return pool_; }

 private:
  // Bumps the revision and drops the lazily cached ground program/models.
  void Invalidate();
  StatusOr<ComponentId> ModuleId(std::string_view name) const;
  // Parses `literal_text` and resolves it to a ground atom id, if present.
  StatusOr<std::optional<GroundLiteral>> ResolveLiteral(
      std::string_view literal_text);
  StatusOr<const Interpretation*> LeastModel(ComponentId module);
  StatusOr<const std::vector<Interpretation>*> StableModels(
      ComponentId module);

  GrounderOptions options_;
  std::shared_ptr<TermPool> pool_;
  uint64_t revision_ = 0;
  OrderedProgram program_;
  std::optional<GroundProgram> ground_;
  std::unordered_map<ComponentId, Interpretation> least_models_;
  std::unordered_map<ComponentId, std::vector<Interpretation>>
      stable_models_;
  // Warm-start seeds left behind by Apply for affected views: the view's
  // pre-mutation least model restricted to predicates outside the
  // mutation's dependency cone (a subset of the new least model, so
  // LeastModelComputer::ComputeFrom may resume from it). Consumed by the
  // next LeastModel call; cleared by Invalidate.
  std::unordered_map<ComponentId, Interpretation> warm_seeds_;
};

}  // namespace ordlog

#endif  // ORDLOG_KB_KNOWLEDGE_BASE_H_
