#!/usr/bin/env python3
"""Metrics overhead guard.

Reads build/BENCH_runtime.json (written by scripts/check.sh) and compares
BM_LoanThroughputObserved — the loan workload with the whole metrics
stack armed: registry-backed instruments, the statsz endpoint listening
(unscraped), and the slow-query log capturing trace events — against the
plain BM_LoanThroughput baseline.  Enabled-but-unscraped observability
must stay within ORDLOG_METRICS_OVERHEAD_MAX (default 2%) of the
baseline.

Benchmark wall times on loaded CI machines are noisy, so the guard
compares real_time of the matching /1 (single-thread) runs and treats a
faster-than-baseline observed run as 0% overhead.
"""

import json
import os
import pathlib
import sys

SUITE = "bench_runtime_throughput"
BASELINE = "BM_LoanThroughput/1"
OBSERVED = "BM_LoanThroughputObserved/1"


def real_time(benchmarks, name):
    for entry in benchmarks:
        if entry.get("name") == name and entry.get("run_type", "iteration") in (
            "iteration",
            "aggregate",
        ):
            if entry.get("aggregate_name", "median") == "median":
                return float(entry["real_time"])
    return None


def main():
    path = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "build/BENCH_runtime.json")
    if not path.exists():
        print(f"check_metrics_overhead: {path} not found (run scripts/check.sh first)")
        return 1
    data = json.loads(path.read_text())
    if SUITE not in data:
        print(f"check_metrics_overhead: suite {SUITE} missing from {path}")
        return 1
    benchmarks = data[SUITE].get("benchmarks", [])
    base = real_time(benchmarks, BASELINE)
    observed = real_time(benchmarks, OBSERVED)
    if base is None or observed is None:
        print("check_metrics_overhead: loan throughput benchmarks missing; "
              "did bench_runtime_throughput run?")
        return 1

    limit = float(os.environ.get("ORDLOG_METRICS_OVERHEAD_MAX", "0.02"))
    overhead = max(0.0, observed / base - 1.0)
    print(f"observed-engine overhead on {BASELINE}: {overhead:+.2%} "
          f"(limit {limit:.0%})")
    if overhead > limit:
        print("check_metrics_overhead: FAILED — armed metrics stack exceeds "
              "the overhead budget")
        return 1
    print("check_metrics_overhead: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
