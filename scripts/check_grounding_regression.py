#!/usr/bin/env python3
"""Grounding performance gate over the bench_grounding JSON report.

Reads build/BENCH_grounding.json (written by scripts/check.sh) and checks
the naive/indexed benchmark pairs emitted by bench/bench_grounding.cc:

 * exactness: each pair grounds to the same number of rules;
 * no regression on the small paper programs (Fig 1/2/3, Ex. 5): the
   indexed matcher must not try more candidate bindings than the naive
   enumerator, and its wall time must stay within a generous noise bound;
 * the win: on the largest loan-grid workload the indexed matcher must
   try at least MIN_GRID_SPEEDUP times fewer candidate bindings. The
   candidates counter is deterministic, so the gate is machine-independent
   (wall time is reported for information only).
"""

import json
import pathlib
import sys

REPORT = pathlib.Path("build/BENCH_grounding.json")
PREFIX = "BM_GroundingStrategy/"

# Small programs where indexed must simply not regress.
PAPER_WORKLOADS = ("fig1", "fig2", "fig3", "ex5")
# Constraint-heavy workloads where the index must win, with the required
# minimum ratio of naive/indexed candidate bindings.
GRID_WORKLOAD = "loan_grid_256"
MIN_GRID_SPEEDUP = 5.0
# Wall-time noise bound for the tiny paper programs (parse-dominated).
PAPER_TIME_TOLERANCE = 3.0


def fail(message):
    print("check_grounding_regression: FAIL: %s" % message)
    sys.exit(1)


def main():
    if not REPORT.exists():
        fail("%s not found (run scripts/check.sh first)" % REPORT)
    report = json.loads(REPORT.read_text())
    pairs = {}
    for bench in report.get("benchmarks", []):
        name = bench.get("name", "")
        if not name.startswith(PREFIX):
            continue
        # BM_GroundingStrategy/<workload>/<strategy>
        parts = name[len(PREFIX):].split("/")
        if len(parts) != 2:
            continue
        workload, strategy = parts
        pairs.setdefault(workload, {})[strategy] = bench

    problems = []
    for workload, by_strategy in sorted(pairs.items()):
        naive = by_strategy.get("naive")
        indexed = by_strategy.get("indexed")
        if naive is None or indexed is None:
            problems.append("%s: missing naive/indexed pair" % workload)
            continue
        if naive["ground_rules"] != indexed["ground_rules"]:
            problems.append(
                "%s: rule counts diverge (naive %d vs indexed %d)"
                % (workload, naive["ground_rules"], indexed["ground_rules"]))
        if indexed["candidates"] > naive["candidates"]:
            problems.append(
                "%s: indexed tried more candidates than naive (%d > %d)"
                % (workload, indexed["candidates"], naive["candidates"]))
        ratio = naive["candidates"] / max(indexed["candidates"], 1.0)
        time_ratio = indexed["real_time"] / max(naive["real_time"], 1e-9)
        print("  %-16s rules=%-8d candidates naive/indexed = %8.1fx  "
              "time indexed/naive = %.2fx"
              % (workload, int(naive["ground_rules"]), ratio, time_ratio))
        if workload in PAPER_WORKLOADS and time_ratio > PAPER_TIME_TOLERANCE:
            problems.append(
                "%s: indexed wall time regressed %.2fx over naive (> %.1fx)"
                % (workload, time_ratio, PAPER_TIME_TOLERANCE))
        if workload == GRID_WORKLOAD and ratio < MIN_GRID_SPEEDUP:
            problems.append(
                "%s: candidate-binding speedup %.2fx below required %.1fx"
                % (workload, ratio, MIN_GRID_SPEEDUP))

    if GRID_WORKLOAD not in pairs:
        problems.append("grid workload %s missing from report" % GRID_WORKLOAD)
    for workload in PAPER_WORKLOADS:
        if workload not in pairs:
            problems.append("paper workload %s missing from report" % workload)

    if problems:
        fail("; ".join(problems))
    print("check_grounding_regression: OK (%d workload pairs)" % len(pairs))


if __name__ == "__main__":
    main()
