#!/usr/bin/env python3
"""Wall-time trend gate between two merged benchmark reports.

Usage: check_bench_trend.py BASELINE.json CURRENT.json [--warn-only]

Both files are merged BENCH_runtime.json reports as written by
scripts/check.sh: {suite_name: google-benchmark JSON}. For every
benchmark present in both reports, the current real_time must not exceed
the baseline by more than MAX_REGRESSION (25%). Benchmarks that appear
only on one side (added / removed) are reported but never fail the gate.

With --warn-only (used on forked-PR CI, where the baseline artifact may
be missing or unrelated) regressions are printed but the exit code stays
0. Wall time is noisy; this gate is a trend alarm with a generous bound,
not a precision instrument — the semantic performance gates
(check_grounding_regression.py, check_incremental_regression.py) use
deterministic counters instead.
"""

import json
import pathlib
import sys

MAX_REGRESSION = 0.25  # +25% real_time


def load(path):
    suites = json.loads(pathlib.Path(path).read_text())
    benches = {}
    for suite, report in sorted(suites.items()):
        for bench in report.get("benchmarks", []):
            # Aggregate rows (mean/median/stddev) would double-count.
            if bench.get("run_type") == "aggregate":
                continue
            name = "%s/%s" % (suite, bench.get("name", ""))
            benches[name] = bench
    return benches


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    warn_only = "--warn-only" in sys.argv[1:]
    if len(args) != 2:
        print(__doc__)
        sys.exit(2)
    baseline_path, current_path = args
    if not pathlib.Path(baseline_path).exists():
        print("check_bench_trend: no baseline at %s; skipping (first run?)"
              % baseline_path)
        sys.exit(0)
    baseline = load(baseline_path)
    current = load(current_path)

    regressions = []
    improvements = 0
    compared = 0
    for name in sorted(baseline.keys() & current.keys()):
        base_time = baseline[name].get("real_time")
        cur_time = current[name].get("real_time")
        if not base_time or not cur_time:
            continue
        compared += 1
        delta = (cur_time - base_time) / base_time
        if delta > MAX_REGRESSION:
            regressions.append("  %-70s %+7.1f%%  (%.0f -> %.0f ns)"
                               % (name, delta * 100, base_time, cur_time))
        elif delta < -MAX_REGRESSION:
            improvements += 1
    added = sorted(current.keys() - baseline.keys())
    removed = sorted(baseline.keys() - current.keys())

    print("check_bench_trend: compared %d benchmarks "
          "(%d added, %d removed, %d improved >%d%%)"
          % (compared, len(added), len(removed), improvements,
             MAX_REGRESSION * 100))
    if regressions:
        print("wall-time regressions over %d%%:" % (MAX_REGRESSION * 100))
        print("\n".join(regressions))
        if warn_only:
            print("check_bench_trend: WARN (--warn-only; not failing)")
            sys.exit(0)
        print("check_bench_trend: FAIL")
        sys.exit(1)
    print("check_bench_trend: OK")


if __name__ == "__main__":
    main()
