#!/bin/sh
# Documentation gate, run by the CI `docs` job (and runnable locally).
#
#  1. check_docs_comments.py — every public declaration in src/trace/,
#     src/obs/ and src/runtime/ carries a doc comment (pure python,
#     always runs).
#  2. check_links.py — every relative markdown link in README/docs/*
#     resolves (pure python, always runs).
#  3. check_metrics_names.py — every registered metric name follows the
#     naming scheme and is documented in docs/OBSERVABILITY.md.
#  4. Doxygen over Doxyfile with warnings promoted to errors for the
#     guarded directories — only when doxygen is installed, so local
#     machines without it still get the first three checks.
set -e
cd "$(dirname "$0")/.."

python3 scripts/check_docs_comments.py
python3 scripts/check_links.py
python3 scripts/check_metrics_names.py

if command -v doxygen >/dev/null 2>&1; then
  mkdir -p build
  # Re-run the Doxyfile with strict settings: undocumented members in the
  # guarded directories become warnings, collected and then grepped.
  (cat Doxyfile
   echo "EXTRACT_ALL = NO"
   echo "WARN_IF_UNDOCUMENTED = YES"
   echo "WARN_LOGFILE = build/doxygen_warnings.txt"
   echo "GENERATE_HTML = YES") | doxygen - >/dev/null
  if grep -E 'src/(trace|obs|runtime)/' build/doxygen_warnings.txt; then
    echo "docs_check: doxygen found undocumented items in guarded headers"
    exit 1
  fi
  echo "docs_check: doxygen ok (API reference in build/doxygen/html)"
else
  echo "docs_check: doxygen not installed; skipped the doxygen pass"
fi
echo "docs_check: all documentation checks passed"
