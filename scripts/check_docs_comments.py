#!/usr/bin/env python3
"""Public-header documentation check for src/trace/, src/obs/ and
src/runtime/.

CONTRIBUTING.md requires a doc comment on every public item.  This check
enforces it for the headers the CI `docs` job guards: every top-level or
class-level declaration (class/struct/enum/function/using) must be
directly preceded by a `//` comment.  It is a lexical check — Doxygen
(when installed, see scripts/docs_check.sh) performs the full-fidelity
pass; this script keeps the gate working on machines without doxygen.

Exit code 0 when every public declaration is documented, 1 otherwise.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
GUARDED = ("src/trace", "src/obs", "src/runtime")

# A declaration opener at file or class scope (2-space indent inside a
# class).  Deliberately coarse: anything that looks like the start of a
# type, alias, or function.
DECL = re.compile(
    r"^(?:  )?"
    r"(?:template\s*<|class\s+\w|struct\s+\w|enum\s+(?:class\s+)?\w|"
    r"using\s+\w+\s*=|(?:[\w:<>,*&~\[\]]+\s+)+[\w:~]+\s*\()"
)
# Lines that look like declarations but are not documentable items.
SKIP = re.compile(
    r"^(?:  )?(?:return|if|for|while|switch|case|delete|new|else|"
    r"namespace|public:|private:|protected:|static_assert|typedef struct)\b"
)
ACCESS = re.compile(r"^\s*(?:public|private|protected):")


def check_header(path):
    lines = path.read_text().splitlines()
    missing = []
    in_private = False
    for index, line in enumerate(lines):
        if ACCESS.match(line):
            in_private = "public" not in line
            continue
        if in_private:
            continue
        if SKIP.match(line) or not DECL.match(line):
            continue
        stripped = line.strip()
        if stripped.startswith("virtual "):
            stripped = stripped[len("virtual "):]
        # Destructors and operators inherit the class doc.
        if stripped.startswith(("~", "operator")):
            continue
        prev = lines[index - 1].strip() if index else ""
        if not (prev.startswith("//") or prev.startswith("template")
                or prev.startswith("ORDLOG_")):
            missing.append(f"{path.relative_to(ROOT)}:{index + 1}: {stripped}")
    return missing


def main():
    missing = []
    headers = []
    for directory in GUARDED:
        headers.extend(sorted((ROOT / directory).glob("*.h")))
    for path in headers:
        missing.extend(check_header(path))
    if missing:
        print("check_docs_comments: undocumented public declarations:")
        for item in missing:
            print(f"  {item}")
        return 1
    print(f"check_docs_comments: ok ({len(headers)} headers)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
