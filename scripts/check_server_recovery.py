#!/usr/bin/env python3
"""Crash-recovery gate for the multi-tenant KB server.

Launches the real kbserver binary on a scratch data dir, drives a
concurrent mutation storm across several tenants, kills the process with
SIGKILL mid-storm (while WAL appends and snapshot rotations are in
flight), restarts it on the same directory, and checks the durability
contract from docs/SERVER.md:

  acked  ⊆  recovered  ⊆  sent

per tenant: every mutation the server acknowledged with 200 before the
kill must be derivable after recovery, and nothing can be derivable that
was never sent.  A second restart must then reproduce the first
recovery's canonical state exactly (sorted fact set + revision) — replay
is deterministic, not merely lossless.

Needs only the standard library.  The server binary defaults to
build/tools/kbserver; override with ORDLOG_KBSERVER.  Exit 0 on pass.
"""

import json
import os
import pathlib
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

ROOT = pathlib.Path(__file__).resolve().parent.parent
SERVER = pathlib.Path(
    os.environ.get("ORDLOG_KBSERVER", ROOT / "build" / "tools" / "kbserver"))

TENANTS = ["alpha", "beta", "gamma", "delta"]
STORM_THREADS = 8
FACTS_PER_THREAD = 40
KILL_AFTER_ACKS = 60  # SIGKILL once this many mutations are acked


def request(port, method, path, body=None, timeout=10):
    """One HTTP request; returns (status_code, parsed_json_or_None)."""
    url = "http://127.0.0.1:%d%s" % (port, path)
    data = json.dumps(body).encode() if body is not None else None
    req = urllib.request.Request(url, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=timeout) as response:
            return response.status, json.loads(response.read() or b"null")
    except urllib.error.HTTPError as error:
        return error.code, None


def start_server(data_dir):
    """Starts kbserver, returns (process, port)."""
    process = subprocess.Popen(
        [str(SERVER), "--port=0", "--data-dir=%s" % data_dir,
         "--snapshot-every=8"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    line = process.stdout.readline()
    match = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
    if not match:
        process.kill()
        raise SystemExit("check_server_recovery: server did not start: %r"
                         % line)
    return process, int(match.group(1))


def canonical_state(port, tenant):
    """(sorted derivable facts, revision) — the identity recovery must
    reproduce.  Rendering order is atom-id order and legitimately differs
    between the live and replayed engine, hence the sort."""
    code, facts = request(port, "GET", "/v1/%s/facts?module=m" % tenant)
    if code != 200:
        raise SystemExit("check_server_recovery: facts(%s) -> %d"
                         % (tenant, code))
    code, status = request(port, "GET", "/v1/%s/status" % tenant)
    if code != 200:
        raise SystemExit("check_server_recovery: status(%s) -> %d"
                         % (tenant, code))
    return sorted(facts["facts"]), status["revision"]


def main():
    if not SERVER.exists():
        print("check_server_recovery: %s not built" % SERVER)
        return 1

    scratch = tempfile.mkdtemp(prefix="ordlog_recovery_")
    process, port = start_server(scratch)

    for tenant in TENANTS:
        code, _ = request(port, "POST", "/v1/admin/create", {"tenant": tenant})
        assert code == 200, "create %s -> %d" % (tenant, code)
        code, _ = request(port, "POST", "/v1/%s/mutate" % tenant, {"ops": [
            {"op": "add_module", "module": "m"},
            {"op": "add_rule", "module": "m", "text": "q(X) :- p(X)."},
        ]})
        assert code == 200, "seed %s -> %d" % (tenant, code)

    # The storm: each thread streams distinct single-argument facts at its
    # tenant, recording what was sent and what came back 200.  Requests
    # in flight at the kill die with a connection error — those facts are
    # sent-but-unacked, exactly the window the subset contract is about.
    lock = threading.Lock()
    sent = {tenant: set() for tenant in TENANTS}
    acked = {tenant: set() for tenant in TENANTS}
    total_acked = [0]

    def storm(thread_index):
        tenant = TENANTS[thread_index % len(TENANTS)]
        for i in range(FACTS_PER_THREAD):
            fact = "p(c%d_%d)" % (thread_index, i)
            with lock:
                sent[tenant].add(fact)
            try:
                code, _ = request(port, "POST", "/v1/%s/mutate" % tenant, {
                    "ops": [{"op": "add_fact", "module": "m", "text": fact}]},
                    timeout=5)
            except (urllib.error.URLError, OSError):
                return  # server is gone: the kill landed
            if code == 200:
                with lock:
                    acked[tenant].add(fact)
                    total_acked[0] += 1

    threads = [threading.Thread(target=storm, args=(t,))
               for t in range(STORM_THREADS)]
    for thread in threads:
        thread.start()

    deadline = time.monotonic() + 30
    while total_acked[0] < KILL_AFTER_ACKS:
        if time.monotonic() > deadline:
            process.kill()
            raise SystemExit("check_server_recovery: storm stalled at %d acks"
                             % total_acked[0])
        time.sleep(0.002)
    process.send_signal(signal.SIGKILL)  # no Stop(), no fsync, no mercy
    process.wait()
    for thread in threads:
        thread.join()

    in_flight = sum(len(sent[t]) - len(acked[t]) for t in TENANTS)
    print("check_server_recovery: killed after %d acks (%d sent-but-unacked)"
          % (total_acked[0], in_flight))

    # First restart: recovery must hold the subset contract per tenant.
    process, port = start_server(scratch)
    first = {}
    for tenant in TENANTS:
        facts, revision = canonical_state(port, tenant)
        recovered = {fact for fact in facts if fact.startswith("p(")}
        missing = acked[tenant] - recovered
        phantom = recovered - sent[tenant]
        if missing:
            print("check_server_recovery: FAILED — %s lost %d acked fact(s): "
                  "%s" % (tenant, len(missing), sorted(missing)[:5]))
            process.kill()
            return 1
        if phantom:
            print("check_server_recovery: FAILED — %s recovered %d fact(s) "
                  "never sent: %s" % (tenant, len(phantom),
                                      sorted(phantom)[:5]))
            process.kill()
            return 1
        # Every p-fact must carry its derived q-twin: recovery replays
        # through the same apply path, so derivation state recovers too.
        derived = {fact for fact in facts if fact.startswith("q(")}
        if len(derived) != len(recovered):
            print("check_server_recovery: FAILED — %s has %d base facts but "
                  "%d derived" % (tenant, len(recovered), len(derived)))
            process.kill()
            return 1
        first[tenant] = (facts, revision)
    process.send_signal(signal.SIGTERM)
    process.wait(timeout=30)

    # Second restart: replay determinism — canonically identical state.
    process, port = start_server(scratch)
    for tenant in TENANTS:
        if canonical_state(port, tenant) != first[tenant]:
            print("check_server_recovery: FAILED — %s differs between two "
                  "recoveries of the same directory" % tenant)
            process.kill()
            return 1
    process.send_signal(signal.SIGTERM)
    process.wait(timeout=30)

    recovered_total = sum(
        len([f for f in first[t][0] if f.startswith("p(")]) for t in TENANTS)
    print("check_server_recovery: ok (%d acked ⊆ %d recovered ⊆ %d sent; "
          "two recoveries canonically identical)"
          % (total_acked[0], recovered_total,
             sum(len(sent[t]) for t in TENANTS)))
    return 0


if __name__ == "__main__":
    sys.exit(main())
