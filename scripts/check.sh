#!/bin/sh
# Full verification: configure, build, test, run every benchmark once.
set -e
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/*; do "$b" --benchmark_min_time=0.01s; done
echo "ordlog: all checks passed"
