#!/bin/sh
# Full verification: configure, build, test, run every benchmark once.
# Benchmark results are collected as JSON in build/BENCH_runtime.json so
# the perf trajectory can be tracked across commits.
set -e
cd "$(dirname "$0")/.."
# Respect an already-configured build tree (its generator may differ).
if [ -f build/CMakeCache.txt ]; then
  cmake -B build
else
  cmake -B build -G Ninja
fi
cmake --build build
ctest --test-dir build --output-on-failure -j"$(nproc)"
mkdir -p build/bench_json
for b in build/bench/*; do
  name=$(basename "$b")
  # JSON goes to a file (not stdout: some benches print reproduction
  # tables before the benchmark report).
  "$b" --benchmark_min_time=0.01 \
       --benchmark_out="build/bench_json/$name.json" \
       --benchmark_out_format=json
done
if command -v python3 >/dev/null 2>&1; then
  python3 - <<'EOF'
import json, pathlib
merged = {}
for path in sorted(pathlib.Path("build/bench_json").glob("*.json")):
    merged[path.stem] = json.loads(path.read_text())
pathlib.Path("build/BENCH_runtime.json").write_text(json.dumps(merged, indent=1))
print("wrote build/BENCH_runtime.json (%d suites)" % len(merged))
# The grounding suite also stands alone: scripts/check_grounding_regression.py
# gates the indexed matcher's speedup and exactness on it.
grounding = json.loads(pathlib.Path("build/bench_json/bench_grounding.json").read_text())
pathlib.Path("build/BENCH_grounding.json").write_text(json.dumps(grounding, indent=1))
print("wrote build/BENCH_grounding.json")
# Same for the incremental suite: scripts/check_incremental_regression.py
# gates the delta grounder's speedup and differential exactness on it.
incremental = json.loads(pathlib.Path("build/bench_json/bench_incremental.json").read_text())
pathlib.Path("build/BENCH_incremental.json").write_text(json.dumps(incremental, indent=1))
print("wrote build/BENCH_incremental.json")
EOF
  # Tracing must be pay-for-what-you-use: the null sink has to stay
  # within 2% of the untraced loan-throughput baseline.
  python3 scripts/check_trace_overhead.py
  # Same deal for the metrics stack: armed-but-unscraped observability
  # has to stay within 2% of the plain engine.
  python3 scripts/check_metrics_overhead.py
  # Registered metric names must follow the documented naming scheme.
  python3 scripts/check_metrics_names.py
  # The indexed grounder must beat the naive enumerator on the grid
  # workload and stay exact + regression-free on the paper programs.
  python3 scripts/check_grounding_regression.py
  # The delta grounder must beat a full rebuild on the mutate-one-fact
  # workload and patch to exactly the cold-reground program.
  python3 scripts/check_incremental_regression.py
  # WAL durability holds under kill -9: every acked mutation survives a
  # mid-storm SIGKILL and recovery is deterministic.
  python3 scripts/check_server_recovery.py
fi
echo "ordlog: all checks passed"
