#!/usr/bin/env python3
"""Incremental-update performance gate over the bench_incremental report.

Reads build/BENCH_incremental.json (written by scripts/check.sh) and
checks the full/delta benchmark pairs emitted by bench/bench_incremental.cc
for the mutate-one-fact loan-grid workload:

 * exactness: every delta bench's in-run differential check (patched
   ground program canonically equal to a cold reground) must have passed
   (`exact` counter == 1), and each full/delta pair must produce the same
   ground-rule count;
 * the win: on the 256 grid, the existing-constant mutation
   (MutateOneFact) must try at least MIN_DELTA_SPEEDUP times fewer
   candidate bindings than a full rebuild. The candidates counter is
   deterministic, so the gate is machine-independent (wall time is
   reported for information only). The fresh-constant mutation
   (MutateFreshConstant) exercises the pivot passes over every old rule —
   its ratio is printed but not gated: the indexed matcher makes the full
   reground's candidate count output-proportional, so the delta's win
   there is wall time (no parse, no universe rebuild), not candidates.

When the incremental_differential_test binary is present in the build
tree, the gate also runs it: its 110 random mutation traces and paper
programs are the broad-coverage differential identity check the bench's
single workload cannot provide.
"""

import json
import pathlib
import subprocess
import sys

REPORT = pathlib.Path("build/BENCH_incremental.json")
FAMILIES = ("BM_MutateOneFact", "BM_MutateFreshConstant")
GATED_FAMILY = "BM_MutateOneFact"
GRID_WORKLOAD = "256"
MIN_DELTA_SPEEDUP = 10.0
DIFFERENTIAL_TEST = pathlib.Path("build/tests/incremental_differential_test")


def fail(message):
    print("check_incremental_regression: FAIL: %s" % message)
    sys.exit(1)


def main():
    if not REPORT.exists():
        fail("%s not found (run scripts/check.sh first)" % REPORT)
    report = json.loads(REPORT.read_text())
    pairs = {}  # (family, workload) -> {"Full": bench, "Delta": bench}
    for bench in report.get("benchmarks", []):
        name = bench.get("name", "")
        for family in FAMILIES:
            for kind in ("Full", "Delta"):
                prefix = "%s_%s/" % (family, kind)
                if name.startswith(prefix):
                    # <family>_<kind>/<n>/iterations:<k> -> <n>
                    workload = name[len(prefix):].split("/")[0]
                    pairs.setdefault((family, workload), {})[kind] = bench

    problems = []
    for (family, workload), by_kind in sorted(pairs.items()):
        full, delta = by_kind.get("Full"), by_kind.get("Delta")
        if full is None or delta is None:
            problems.append("%s/%s: missing full/delta pair"
                            % (family, workload))
            continue
        if full["ground_rules"] != delta["ground_rules"]:
            problems.append(
                "%s/%s: rule counts diverge (full %d vs delta %d)"
                % (family, workload, full["ground_rules"],
                   delta["ground_rules"]))
        if delta.get("exact") != 1.0:
            problems.append(
                "%s/%s: delta patch is not canonically equal to a cold "
                "reground (exact=%s)"
                % (family, workload, delta.get("exact")))
        ratio = full["candidates"] / max(delta["candidates"], 1.0)
        time_ratio = full["real_time"] / max(delta["real_time"], 1e-9)
        print("  %-24s n=%-5s rules=%-7d candidates full/delta = %8.1fx  "
              "time full/delta = %.1fx"
              % (family, workload, int(full["ground_rules"]), ratio,
                 time_ratio))
        if (family == GATED_FAMILY and workload == GRID_WORKLOAD
                and ratio < MIN_DELTA_SPEEDUP):
            problems.append(
                "%s/%s: candidate-binding speedup %.2fx below required %.1fx"
                % (family, workload, ratio, MIN_DELTA_SPEEDUP))

    if (GATED_FAMILY, GRID_WORKLOAD) not in pairs:
        problems.append("gated workload %s/%s missing from report"
                        % (GATED_FAMILY, GRID_WORKLOAD))

    if problems:
        fail("; ".join(problems))

    if DIFFERENTIAL_TEST.exists():
        print("  running %s ..." % DIFFERENTIAL_TEST)
        result = subprocess.run([str(DIFFERENTIAL_TEST)],
                                capture_output=True, text=True)
        if result.returncode != 0:
            print(result.stdout[-4000:])
            fail("incremental differential test failed")
        print("  differential identity: OK")
    else:
        print("  note: %s not built; differential identity covered by ctest"
              % DIFFERENTIAL_TEST)

    print("check_incremental_regression: OK (%d workload pairs)" % len(pairs))


if __name__ == "__main__":
    main()
