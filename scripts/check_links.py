#!/usr/bin/env python3
"""Markdown link checker.

Scans the repo's markdown documentation (README.md, CONTRIBUTING.md,
CHANGELOG.md, DESIGN.md, EXPERIMENTS.md, docs/*.md) for inline links and
verifies that every *relative* link target exists in the tree.  External
http(s)/mailto links are not fetched — CI must not depend on the network —
but their URLs are checked for obvious breakage (whitespace).

Exit code 0 when every link resolves, 1 otherwise (with one line per
broken link: file:line: target).
"""

import pathlib
import re
import sys

LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

ROOT = pathlib.Path(__file__).resolve().parent.parent


def doc_files():
    for name in ("README.md", "CONTRIBUTING.md", "CHANGELOG.md",
                 "DESIGN.md", "EXPERIMENTS.md", "ROADMAP.md"):
        path = ROOT / name
        if path.exists():
            yield path
    yield from sorted((ROOT / "docs").glob("*.md"))


def check_file(path):
    broken = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for match in LINK.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if target.startswith("#"):  # intra-document anchor
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (path.parent / relative).resolve()
            if not resolved.exists():
                broken.append(f"{path.relative_to(ROOT)}:{lineno}: {target}")
    return broken


def main():
    broken = []
    checked = 0
    for path in doc_files():
        checked += 1
        broken.extend(check_file(path))
    if broken:
        print("check_links: broken relative links:")
        for item in broken:
            print(f"  {item}")
        return 1
    print(f"check_links: ok ({checked} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
