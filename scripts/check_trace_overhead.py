#!/usr/bin/env python3
"""Tracing overhead guard.

Reads build/BENCH_runtime.json (written by scripts/check.sh) and compares
BM_LoanThroughputNullSink against the untraced BM_LoanThroughput baseline.
The null sink pays only one virtual Emit call per trace event, so its
throughput must stay within ORDLOG_TRACE_OVERHEAD_MAX (default 2%) of the
baseline on the loan workload.  The JSON sink ratio is reported for
information only: serializing every event is allowed to cost more.

Benchmark wall times on loaded CI machines are noisy, so the guard
compares real_time of the matching /1 (single-thread) runs and treats a
faster-than-baseline traced run as 0% overhead.
"""

import json
import os
import pathlib
import sys

SUITE = "bench_runtime_throughput"
BASELINE = "BM_LoanThroughput/1"
NULL_SINK = "BM_LoanThroughputNullSink/1"
JSON_SINK = "BM_LoanThroughputJsonSink/1"


def real_time(benchmarks, name):
    for entry in benchmarks:
        if entry.get("name") == name and entry.get("run_type", "iteration") in (
            "iteration",
            "aggregate",
        ):
            if entry.get("aggregate_name", "median") == "median":
                return float(entry["real_time"])
    return None


def main():
    path = pathlib.Path(sys.argv[1] if len(sys.argv) > 1 else "build/BENCH_runtime.json")
    if not path.exists():
        print(f"check_trace_overhead: {path} not found (run scripts/check.sh first)")
        return 1
    data = json.loads(path.read_text())
    if SUITE not in data:
        print(f"check_trace_overhead: suite {SUITE} missing from {path}")
        return 1
    benchmarks = data[SUITE].get("benchmarks", [])
    base = real_time(benchmarks, BASELINE)
    null_sink = real_time(benchmarks, NULL_SINK)
    json_sink = real_time(benchmarks, JSON_SINK)
    if base is None or null_sink is None:
        print("check_trace_overhead: loan throughput benchmarks missing; "
              "did bench_runtime_throughput run?")
        return 1

    limit = float(os.environ.get("ORDLOG_TRACE_OVERHEAD_MAX", "0.02"))
    overhead = max(0.0, null_sink / base - 1.0)
    print(f"null-sink overhead on {BASELINE}: {overhead:+.2%} (limit {limit:.0%})")
    if json_sink is not None:
        json_overhead = json_sink / base - 1.0
        print(f"json-sink overhead (informational): {json_overhead:+.2%}")
    if overhead > limit:
        print("check_trace_overhead: FAILED — null sink exceeds the overhead budget")
        return 1
    print("check_trace_overhead: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
