#!/usr/bin/env python3
"""Metric naming lint.

Every instrument registered in production code (src/) must follow the
naming scheme documented in docs/OBSERVABILITY.md:

  * matches ^ordlog_[a-z0-9_]+(_total|_us|_bytes|_ratio)?$ — the ordlog_
    prefix, lowercase snake case, and (when the instrument is a counter
    or measures a quantity) one of the blessed unit suffixes;
  * appears verbatim in docs/OBSERVABILITY.md, so the exposition and the
    documentation can never drift apart.

The check also runs in reverse: every name listed in an OBSERVABILITY.md
metric-inventory table row must still be registered somewhere under
src/, so deleting or renaming an instrument without updating the doc
fails just like adding one without documenting it.

The scan is lexical: it collects the first string literal passed to
MetricsRegistry::Get{Counter,Gauge,Histogram}Family in any src/ source
file.  Tests and benches may register throwaway names and are not
scanned.  Exit code 0 when every registered name passes, 1 otherwise.
"""

import pathlib
import re
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
DOC = ROOT / "docs" / "OBSERVABILITY.md"

# GetCounterFamily(\n    "name", ... — the name may sit on the next line.
REGISTRATION = re.compile(
    r"Get(?:Counter|Gauge|Histogram)Family\(\s*\"([^\"]+)\"", re.S)
VALID = re.compile(r"^ordlog_[a-z0-9_]+(_total|_us|_bytes|_ratio)?$")
# A metric-inventory table row: the name is the backticked first column.
INVENTORY_ROW = re.compile(r"^\|\s*`(ordlog_[a-z0-9_]+)`\s*\|", re.M)


def documented_inventory(doc_text):
    return {match.group(1) for match in INVENTORY_ROW.finditer(doc_text)}


def registered_names():
    names = {}
    for path in sorted((ROOT / "src").rglob("*.cc")) + sorted(
            (ROOT / "src").rglob("*.h")):
        for match in REGISTRATION.finditer(path.read_text()):
            names.setdefault(match.group(1), path.relative_to(ROOT))
    return names


def main():
    names = registered_names()
    if not names:
        print("check_metrics_names: no registered metrics found under src/")
        return 1
    doc_text = DOC.read_text() if DOC.exists() else ""
    errors = []
    for name, path in sorted(names.items()):
        if not VALID.match(name):
            errors.append(f"{path}: {name!r} violates the naming scheme "
                          f"(see docs/OBSERVABILITY.md)")
        if name not in doc_text:
            errors.append(f"{path}: {name!r} is not documented in "
                          f"docs/OBSERVABILITY.md")
    for name in sorted(documented_inventory(doc_text) - set(names)):
        errors.append(f"docs/OBSERVABILITY.md: {name!r} is in the metric "
                      f"inventory but no longer registered under src/")
    if errors:
        print("check_metrics_names: FAILED")
        for error in errors:
            print(f"  {error}")
        return 1
    print(f"check_metrics_names: ok ({len(names)} metric names)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
