// Quickstart: the paper's Figure 1 program through the KnowledgeBase API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <iostream>

#include "kb/knowledge_base.h"

int main() {
  ordlog::KnowledgeBase kb;

  // Module c2: general knowledge about birds.
  ordlog::Status status = kb.Load(R"(
    component c2 {
      bird(penguin).
      bird(pigeon).
      fly(X) :- bird(X).
      -ground_animal(X) :- bird(X).
    }
    component c1 {
      ground_animal(penguin).
      -fly(X) :- ground_animal(X).
    }
    order c1 < c2.
  )");
  if (!status.ok()) {
    std::cerr << "load failed: " << status << "\n";
    return 1;
  }

  // Each module has its own meaning. c1 (the specialist) knows penguins
  // are grounded; c2 (the generalist) believes every bird flies.
  for (const char* module : {"c1", "c2"}) {
    std::cout << "--- view of module " << module << " ---\n";
    for (const char* literal :
         {"fly(penguin)", "fly(pigeon)", "ground_animal(penguin)"}) {
      const auto truth = kb.Query(module, literal);
      if (!truth.ok()) {
        std::cerr << "query failed: " << truth.status() << "\n";
        return 1;
      }
      std::cout << "  " << literal << " = "
                << ordlog::TruthValueToString(*truth) << "\n";
    }
  }

  std::cout << "\nWhy doesn't the penguin fly (according to c1)?\n";
  const auto explanation = kb.Explain("c1", "fly(penguin)");
  if (explanation.ok()) {
    std::cout << *explanation;
  }
  return 0;
}
