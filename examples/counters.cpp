// Function terms and the depth-bounded Herbrand universe: successor
// arithmetic under a configurable grounding depth. Demonstrates the
// documented substitution for infinite Herbrand universes (DESIGN.md §2):
// `GrounderOptions.herbrand.max_function_depth` bounds the closure.

#include <cstdlib>
#include <iostream>

#include "kb/knowledge_base.h"

int main(int argc, char** argv) {
  const int depth = argc > 1 ? std::atoi(argv[1]) : 6;

  ordlog::GrounderOptions options;
  options.herbrand.max_function_depth = depth;
  ordlog::KnowledgeBase kb(options);

  const ordlog::Status status = kb.Load(R"(
    component counter {
      nat(z).
      nat(s(X)) :- nat(X).
      even(z).
      even(s(s(X))) :- even(X).
      odd(s(X)) :- even(X).
    }
  )");
  if (!status.ok()) {
    std::cerr << "load failed: " << status << "\n";
    return 1;
  }

  std::cout << "Grounding depth " << depth << ":\n";
  const auto evens = kb.QueryAll("counter", "even(X)");
  const auto odds = kb.QueryAll("counter", "odd(X)");
  if (!evens.ok() || !odds.ok()) {
    std::cerr << "query failed\n";
    return 1;
  }
  std::cout << "  even numerals (" << evens->size() << "):";
  for (const std::string& fact : *evens) std::cout << " " << fact;
  std::cout << "\n  odd numerals (" << odds->size() << "):";
  for (const std::string& fact : *odds) std::cout << " " << fact;
  std::cout << "\n";

  // Terms beyond the depth bound are simply absent from the (finite)
  // ground program: undefined, not false.
  std::string deep = "z";
  for (int i = 0; i < depth + 2; ++i) deep = "s(" + deep + ")";
  const auto truth = kb.Query("counter", "nat(" + deep + ")");
  if (truth.ok()) {
    std::cout << "  nat(" << deep
              << ") = " << ordlog::TruthValueToString(*truth)
              << "  (beyond the depth bound)\n";
  }
  return 0;
}
