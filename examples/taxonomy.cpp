// A deeper isa hierarchy with defaults, exceptions and versioning — the
// knowledge-base usage Section 5 of the paper motivates.
//
//                 life            (most general defaults)
//                  |
//                animals
//               /      |
//             birds   mammals     (incomparable siblings)
//               |
//            antarctic            (most specific, exceptions)
//
// Lower modules inherit from (and may overrule) everything above them.

#include <iostream>

#include "kb/knowledge_base.h"

namespace {

const char* kTaxonomy = R"(
component life {
  mortal(X) :- creature(X).
}
component animals {
  creature(X) :- animal(X).
  moves(X) :- animal(X).
}
component birds {
  animal(X) :- bird(X).
  fly(X) :- bird(X).
  -penguin(X) :- bird(X).
  -swims(X) :- bird(X).
  bird(tweety).
  bird(gull).
}
component mammals {
  animal(X) :- mammal(X).
  -fly(X) :- mammal(X).
  mammal(rex).
}
component antarctic {
  penguin(pingu).
  bird(X) :- penguin(X).
  -fly(X) :- penguin(X).
  swims(X) :- penguin(X).
}
order antarctic < birds.
order birds < animals.
order mammals < animals.
order animals < life.
)";

void Show(ordlog::KnowledgeBase& kb, const char* module,
          const char* literal) {
  const auto truth = kb.Query(module, literal);
  std::cout << "  [" << module << "] " << literal << " = "
            << (truth.ok() ? ordlog::TruthValueToString(*truth)
                           : truth.status().ToString().c_str())
            << "\n";
}

}  // namespace

int main() {
  ordlog::KnowledgeBase kb;
  const ordlog::Status status = kb.Load(kTaxonomy);
  if (!status.ok()) {
    std::cerr << "load failed: " << status << "\n";
    return 1;
  }

  std::cout << "Defaults and exceptions across the hierarchy:\n";
  Show(kb, "antarctic", "fly(pingu)");    // exception wins: false
  Show(kb, "antarctic", "swims(pingu)");  // overrules the bird default
  Show(kb, "antarctic", "fly(tweety)");   // default survives: true
  Show(kb, "antarctic", "mortal(pingu)"); // inherited from the top
  Show(kb, "birds", "fly(pingu)");        // birds don't know pingu
  Show(kb, "mammals", "fly(rex)");        // mammal default
  Show(kb, "mammals", "fly(tweety)");     // siblings don't share facts

  std::cout << "\nWhy does pingu swim (asked in module antarctic)?\n";
  const auto explanation = kb.Explain("antarctic", "swims(pingu)");
  if (explanation.ok()) std::cout << *explanation;

  std::cout << "\nVersioning: antarctic_v2 revises the swimming rule.\n";
  ordlog::Status v2 = kb.AddModule("antarctic_v2");
  if (v2.ok()) v2 = kb.AddVersion("antarctic_v2", "antarctic");
  if (v2.ok()) v2 = kb.AddRuleText("antarctic_v2", "tagged(pingu).");
  if (v2.ok()) {
    v2 = kb.AddRuleText("antarctic_v2", "-swims(X) :- tagged(X).");
  }
  if (!v2.ok()) {
    std::cerr << "versioning failed: " << v2 << "\n";
    return 1;
  }
  Show(kb, "antarctic_v2", "swims(pingu)");  // revised: false
  Show(kb, "antarctic", "swims(pingu)");     // old version unchanged
  return 0;
}
