// Fault diagnosis with ordered logic: design defaults, sensor exceptions,
// and conflicting observations handled by overruling and defeating, with
// brave/cautious queries over the stable models.
//
// Module layout (lower overrules higher):
//   design      — components work unless something is wrong (defaults)
//   sensors     — measurements and fault rules (exceptions to design)
//   incident    — the concrete incident being diagnosed

#include <iostream>

#include "kb/knowledge_base.h"

namespace {

const char* kPlant = R"(
component design {
  part(pump).  part(valve).  part(sensor_a).
  ok(X) :- part(X).
  -alarm(X) :- part(X).
}
component sensors {
  -ok(X) :- hot(X).
  alarm(X) :- hot(X).
  -hot(X) :- part(X).    % parts run cool unless an incident says otherwise
}
component incident {
  hot(pump).
}
order incident < sensors.
order sensors < design.
)";

void Show(ordlog::KnowledgeBase& kb, const char* literal) {
  const auto truth = kb.Query("incident", literal);
  std::cout << "  " << literal << " = "
            << (truth.ok() ? ordlog::TruthValueToString(*truth)
                           : truth.status().ToString().c_str())
            << "\n";
}

}  // namespace

int main() {
  ordlog::KnowledgeBase kb;
  if (ordlog::Status status = kb.Load(kPlant); !status.ok()) {
    std::cerr << "load failed: " << status << "\n";
    return 1;
  }

  std::cout << "Incident view (skeptical / least model):\n";
  Show(kb, "ok(pump)");      // false: the hot reading overrules the default
  Show(kb, "alarm(pump)");   // true
  Show(kb, "ok(valve)");     // true: design default survives
  Show(kb, "alarm(valve)");  // false

  std::cout << "\nWhy is the pump not ok?\n";
  if (const auto why = kb.Explain("incident", "ok(pump)"); why.ok()) {
    std::cout << *why;
  }

  // A second, conflicting reading: an independent monitoring module claims
  // the pump is fine. Incomparable with `sensors`, so the two defeat each
  // other and the diagnosis becomes undefined.
  std::cout << "\nAdding a conflicting monitoring module...\n";
  ordlog::Status status = kb.AddModule("monitoring");
  if (status.ok()) status = kb.AddRuleText("monitoring", "ok(pump).");
  if (status.ok()) status = kb.AddIsa("incident", "monitoring");
  if (!status.ok()) {
    std::cerr << "update failed: " << status << "\n";
    return 1;
  }
  Show(kb, "ok(pump)");  // undefined: sensors vs monitoring defeat

  const auto brave = kb.BravelyHolds("incident", "ok(pump)");
  const auto cautious = kb.CautiouslyHolds("incident", "ok(pump)");
  if (brave.ok() && cautious.ok()) {
    std::cout << "  ok(pump): bravely " << (*brave ? "yes" : "no")
              << ", cautiously " << (*cautious ? "yes" : "no") << "\n";
  }
  const auto models = kb.CountStableModels("incident");
  if (models.ok()) {
    std::cout << "  stable models of the incident view: " << *models
              << "\n";
  }
  return 0;
}
