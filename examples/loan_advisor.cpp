// The paper's Figure 3 loan program as a small decision-support tool.
//
// Usage:
//   loan_advisor                 # reproduce the paper's four scenarios
//   loan_advisor INFLATION RATE  # decide for specific figures
//
// Three experts advise `myself` (module c1): Expert2 recommends a loan
// under high inflation, Expert4 vetoes it under high rates, and Expert3 —
// a refinement of Expert4 — overrides the veto when inflation outruns the
// rate by more than 2 points.

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "base/strings.h"
#include "kb/knowledge_base.h"

namespace {

constexpr const char* kLoanProgram = R"(
component c2 {
  take_loan :- inflation(X), X > 11.
}
component c4 {
  -take_loan :- loan_rate(X), X > 14.
}
component c3 {
  take_loan :- inflation(X), loan_rate(Y), X > Y + 2.
}
component c1 {
}
order c1 < c2.
order c1 < c3.
order c3 < c4.
)";

// Returns the advice for the given (optional) facts at `myself` level.
std::string Advise(std::optional<int> inflation, std::optional<int> rate,
                   bool explain) {
  ordlog::KnowledgeBase kb;
  ordlog::Status status = kb.Load(kLoanProgram);
  if (!status.ok()) return status.ToString();
  if (inflation.has_value()) {
    status = kb.AddRuleText(
        "c1", ordlog::StrCat("inflation(", *inflation, ")."));
    if (!status.ok()) return status.ToString();
  }
  if (rate.has_value()) {
    status =
        kb.AddRuleText("c1", ordlog::StrCat("loan_rate(", *rate, ")."));
    if (!status.ok()) return status.ToString();
  }
  const auto truth = kb.Query("c1", "take_loan");
  if (!truth.ok()) return truth.status().ToString();
  std::string advice;
  switch (*truth) {
    case ordlog::TruthValue::kTrue:
      advice = "take the loan";
      break;
    case ordlog::TruthValue::kFalse:
      advice = "do not take the loan";
      break;
    case ordlog::TruthValue::kUndefined:
      advice = "no advice (the experts' information is inconclusive)";
      break;
  }
  if (explain) {
    const auto explanation = kb.Explain("c1", "take_loan");
    if (explanation.ok()) advice += "\n" + *explanation;
  }
  return advice;
}

void PrintScenario(const char* label, std::optional<int> inflation,
                   std::optional<int> rate) {
  std::cout << label << ": inflation="
            << (inflation ? std::to_string(*inflation) : "-")
            << " rate=" << (rate ? std::to_string(*rate) : "-") << " => "
            << Advise(inflation, rate, /*explain=*/false) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3) {
    std::cout << Advise(std::atoi(argv[1]), std::atoi(argv[2]),
                        /*explain=*/true);
    return 0;
  }
  std::cout << "Reproducing the paper's Figure 3 narrative:\n";
  PrintScenario("scenario 1 (no facts)      ", std::nullopt, std::nullopt);
  PrintScenario("scenario 2 (Expert2 fires) ", 12, std::nullopt);
  PrintScenario("scenario 3 (defeat)        ", 12, 16);
  PrintScenario("scenario 4 (overruling)    ", 19, 16);
  std::cout << "\nRun `loan_advisor INFLATION RATE` for your own figures.\n";
  return 0;
}
