// A serving loop around the QueryEngine: a loan-advisor knowledge base
// answering concurrent queries on a thread pool, with per-query
// deadlines, a live policy update, and a metrics report at the end. This
// is the shape of a long-lived ordlog service embedded in a host process.
//
// Observability (optional; the no-argument behavior is unchanged):
//   --statsz-port=N    serve /metricsz, /statsz, /healthz, /readyz and
//                      /slowz on loopback port N (0 = ephemeral). The
//                      ORDLOG_STATSZ_PORT environment variable is the
//                      fallback when the flag is absent.
//   --serve-seconds=N  keep the process (and the statsz endpoint) alive
//                      for N seconds after the workload, so scrapers can
//                      curl it. Default 0: exit immediately.
// With statsz enabled the slow-query log records every query (threshold
// 0), so /slowz always has content to show.

#include <chrono>
#include <cstdlib>
#include <future>
#include <iomanip>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "kb/knowledge_base.h"
#include "runtime/query_engine.h"

namespace {

constexpr const char* kLoanPolicy = R"(
component c2 { take_loan :- inflation(X), X > 11. }
component c4 { -take_loan :- loan_rate(X), X > 14. }
component c3 { take_loan :- inflation(X), loan_rate(Y), X > Y + 2. }
component c1 {
  inflation(19).
  loan_rate(16).
}
order c1 < c2. order c1 < c3. order c3 < c4.
)";

const char* Render(ordlog::TruthValue truth) {
  switch (truth) {
    case ordlog::TruthValue::kTrue:
      return "true";
    case ordlog::TruthValue::kFalse:
      return "false";
    case ordlog::TruthValue::kUndefined:
      return "undefined";
  }
  return "?";
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  using std::chrono::milliseconds;

  int statsz_port = -1;  // -1 = disabled
  int serve_seconds = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (StartsWith(arg, "--statsz-port=")) {
      statsz_port = std::atoi(arg.c_str() + 14);
    } else if (StartsWith(arg, "--serve-seconds=")) {
      serve_seconds = std::atoi(arg.c_str() + 16);
    } else {
      std::cerr << "usage: server_loop [--statsz-port=N]"
                << " [--serve-seconds=N]\n";
      return 2;
    }
  }
  if (statsz_port < 0) {
    if (const char* env = std::getenv("ORDLOG_STATSZ_PORT")) {
      statsz_port = std::atoi(env);
    }
  }

  ordlog::KnowledgeBase kb;
  if (auto status = kb.Load(kLoanPolicy); !status.ok()) {
    std::cerr << "load failed: " << status << "\n";
    return 1;
  }

  // Four workers; every query gets a 250 ms deadline unless it sets a
  // tighter one of its own.
  ordlog::QueryEngineOptions options;
  options.num_threads = 4;
  options.default_deadline = milliseconds(250);
  if (statsz_port >= 0) {
    options.statsz_port = statsz_port;
    options.slow_query_threshold = std::chrono::microseconds(0);
  }
  ordlog::QueryEngine engine(kb, options);
  if (statsz_port >= 0) {
    if (!engine.statsz_status().ok()) {
      std::cerr << "statsz failed: " << engine.statsz_status() << "\n";
      return 1;
    }
    std::cout << "statsz listening on http://127.0.0.1:"
              << engine.statsz_port() << "/statsz\n";
  }

  // Burst 1: concurrent skeptical queries from several "clients". The
  // first one computes the least model of the c1 view; the rest coalesce
  // onto it or hit the cache.
  std::vector<std::future<ordlog::StatusOr<ordlog::QueryAnswer>>> inflight;
  for (int client = 0; client < 8; ++client) {
    ordlog::QueryRequest request;
    request.module = "c1";
    request.literal = client % 2 == 0 ? "take_loan" : "-take_loan";
    request.deadline = milliseconds(100);
    inflight.push_back(engine.Submit(std::move(request)));
  }
  for (auto& future : inflight) {
    const auto answer = future.get();
    if (!answer.ok()) {
      std::cerr << "query failed: " << answer.status() << "\n";
      return 1;
    }
    std::cout << "query -> " << Render(answer->truth)
              << (answer->cache_hit ? "  (cached)" : "") << "\n";
  }

  // A brave query walks the stable-model search, so the per-component
  // solver metrics (ordlog_solver_search_total) are exercised too.
  const auto brave = engine.QueryBrave("c1", "take_loan");
  if (!brave.ok()) {
    std::cerr << "query failed: " << brave.status() << "\n";
    return 1;
  }
  std::cout << "brave: take_loan -> " << (*brave ? "holds" : "does not hold")
            << "\n";

  // A client with an already-expired deadline is shed without occupying
  // a worker for the full computation.
  ordlog::QueryRequest doomed;
  doomed.module = "c1";
  doomed.literal = "take_loan";
  doomed.deadline = milliseconds(0);
  const auto shed = engine.Submit(std::move(doomed)).get();
  std::cout << "expired-deadline query -> " << shed.status() << "\n";

  // Live policy update: the interest rate drops. The engine bumps the KB
  // revision and the cached models for the old world are invalidated.
  if (auto status = engine.AddRuleText("c1", "loan_rate(10)."); !status.ok()) {
    std::cerr << "mutation failed: " << status << "\n";
    return 1;
  }

  // Burst 2: the same question against the new revision.
  const auto after = engine.QuerySkeptical("c1", "take_loan");
  if (!after.ok()) {
    std::cerr << "query failed: " << after.status() << "\n";
    return 1;
  }
  std::cout << "after rate drop: take_loan -> " << Render(*after) << "\n";

  const ordlog::MetricsSnapshot metrics = engine.Metrics();
  std::cout << "\n" << metrics.ToString() << "\n";
  std::cout << std::fixed << std::setprecision(2)
            << "cache hit rate: " << metrics.cache_hit_rate()
            << "  failure rate: " << metrics.failure_rate() << "\n";

  if (statsz_port >= 0 && serve_seconds > 0) {
    std::cout << "serving statsz for " << serve_seconds << "s ...\n";
    std::this_thread::sleep_for(std::chrono::seconds(serve_seconds));
  }
  return 0;
}
