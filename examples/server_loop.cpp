// A serving loop around the QueryEngine: a loan-advisor knowledge base
// answering concurrent queries on a thread pool, with per-query
// deadlines, a live policy update, and a metrics report at the end. This
// is the shape of a long-lived ordlog service embedded in a host process.

#include <chrono>
#include <future>
#include <iostream>
#include <vector>

#include "kb/knowledge_base.h"
#include "runtime/query_engine.h"

namespace {

constexpr const char* kLoanPolicy = R"(
component c2 { take_loan :- inflation(X), X > 11. }
component c4 { -take_loan :- loan_rate(X), X > 14. }
component c3 { take_loan :- inflation(X), loan_rate(Y), X > Y + 2. }
component c1 {
  inflation(19).
  loan_rate(16).
}
order c1 < c2. order c1 < c3. order c3 < c4.
)";

const char* Render(ordlog::TruthValue truth) {
  switch (truth) {
    case ordlog::TruthValue::kTrue:
      return "true";
    case ordlog::TruthValue::kFalse:
      return "false";
    case ordlog::TruthValue::kUndefined:
      return "undefined";
  }
  return "?";
}

}  // namespace

int main() {
  using std::chrono::milliseconds;

  ordlog::KnowledgeBase kb;
  if (auto status = kb.Load(kLoanPolicy); !status.ok()) {
    std::cerr << "load failed: " << status << "\n";
    return 1;
  }

  // Four workers; every query gets a 250 ms deadline unless it sets a
  // tighter one of its own.
  ordlog::QueryEngineOptions options;
  options.num_threads = 4;
  options.default_deadline = milliseconds(250);
  ordlog::QueryEngine engine(kb, options);

  // Burst 1: concurrent skeptical queries from several "clients". The
  // first one computes the least model of the c1 view; the rest coalesce
  // onto it or hit the cache.
  std::vector<std::future<ordlog::StatusOr<ordlog::QueryAnswer>>> inflight;
  for (int client = 0; client < 8; ++client) {
    ordlog::QueryRequest request;
    request.module = "c1";
    request.literal = client % 2 == 0 ? "take_loan" : "-take_loan";
    request.deadline = milliseconds(100);
    inflight.push_back(engine.Submit(std::move(request)));
  }
  for (auto& future : inflight) {
    const auto answer = future.get();
    if (!answer.ok()) {
      std::cerr << "query failed: " << answer.status() << "\n";
      return 1;
    }
    std::cout << "query -> " << Render(answer->truth)
              << (answer->cache_hit ? "  (cached)" : "") << "\n";
  }

  // A client with an already-expired deadline is shed without occupying
  // a worker for the full computation.
  ordlog::QueryRequest doomed;
  doomed.module = "c1";
  doomed.literal = "take_loan";
  doomed.deadline = milliseconds(0);
  const auto shed = engine.Submit(std::move(doomed)).get();
  std::cout << "expired-deadline query -> " << shed.status() << "\n";

  // Live policy update: the interest rate drops. The engine bumps the KB
  // revision and the cached models for the old world are invalidated.
  if (auto status = engine.AddRuleText("c1", "loan_rate(10)."); !status.ok()) {
    std::cerr << "mutation failed: " << status << "\n";
    return 1;
  }

  // Burst 2: the same question against the new revision.
  const auto after = engine.QuerySkeptical("c1", "take_loan");
  if (!after.ok()) {
    std::cerr << "query failed: " << after.status() << "\n";
    return 1;
  }
  std::cout << "after rate drop: take_loan -> " << Render(*after) << "\n";

  std::cout << "\n" << engine.Metrics().ToString();
  return 0;
}
