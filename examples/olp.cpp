// olp — command-line interpreter for ordered logic programs.
//
// Usage:
//   olp FILE [--module=NAME] [--query=LITERAL] [--all=PATTERN]
//            [--explain=LITERAL] [--facts] [--stable] [--dump] [--stats]
//   olp FILE --repl          # interactive session (:help for commands)
//
// With no module given, the first declared component is used. With no
// action flags, prints the derivable facts of the selected module.

#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "base/strings.h"
#include "kb/knowledge_base.h"
#include "ground/conflicts.h"
#include "lang/analysis.h"
#include "lang/printer.h"

namespace {

struct Options {
  std::string file;
  std::optional<std::string> module;
  std::vector<std::string> queries;
  std::vector<std::string> patterns;
  std::vector<std::string> explains;
  bool facts = false;
  bool stable = false;
  bool dump = false;
  bool stats = false;
  bool repl = false;
};

int Usage() {
  std::cerr << "usage: olp FILE [--module=NAME] [--query=LITERAL]...\n"
            << "           [--all=PATTERN]... [--explain=LITERAL]...\n"
            << "           [--facts] [--stable] [--dump] [--stats]\n";
  return 2;
}

std::optional<Options> ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!ordlog::StartsWith(arg, "--")) {
      if (!options.file.empty()) return std::nullopt;
      options.file = arg;
    } else if (ordlog::StartsWith(arg, "--module=")) {
      options.module = arg.substr(9);
    } else if (ordlog::StartsWith(arg, "--query=")) {
      options.queries.push_back(arg.substr(8));
    } else if (ordlog::StartsWith(arg, "--all=")) {
      options.patterns.push_back(arg.substr(6));
    } else if (ordlog::StartsWith(arg, "--explain=")) {
      options.explains.push_back(arg.substr(10));
    } else if (arg == "--facts") {
      options.facts = true;
    } else if (arg == "--stable") {
      options.stable = true;
    } else if (arg == "--dump") {
      options.dump = true;
    } else if (arg == "--stats") {
      options.stats = true;
    } else if (arg == "--repl") {
      options.repl = true;
    } else {
      return std::nullopt;
    }
  }
  if (options.file.empty()) return std::nullopt;
  return options;
}

// Interactive session. Lines starting with ':' are commands; anything
// else is queried as a ground literal in the current module.
int RunRepl(ordlog::KnowledgeBase& kb, std::string current_module) {
  std::cout << "ordlog interactive session; :help for commands\n";
  std::string line;
  while (std::cout << current_module << "> " << std::flush,
         std::getline(std::cin, line)) {
    const std::string_view trimmed = ordlog::StripWhitespace(line);
    if (trimmed.empty()) continue;
    if (trimmed == ":quit" || trimmed == ":q") break;
    if (trimmed == ":help") {
      std::cout << "  LITERAL            query truth in the current module\n"
                << "  :module NAME       switch module\n"
                << "  :modules           list modules\n"
                << "  :rules [NAME]      show a module's rules\n"
                << "  :assert RULE       add a rule to the current module\n"
                << "  :facts             derivable literals\n"
                << "  :all PATTERN       matching derivable literals\n"
                << "  :explain LITERAL   derivation / failure trace\n"
                << "  :stable            number of stable models\n"
                << "  :quit\n";
      continue;
    }
    auto report = [](const ordlog::Status& status) {
      if (!status.ok()) std::cout << "error: " << status << "\n";
    };
    if (ordlog::StartsWith(trimmed, ":module ")) {
      const std::string name{ordlog::StripWhitespace(trimmed.substr(8))};
      if (kb.HasModule(name)) {
        current_module = name;
      } else {
        std::cout << "error: no module named '" << name << "'\n";
      }
    } else if (trimmed == ":modules") {
      for (const std::string& name : kb.ListModules()) {
        std::cout << "  " << name
                  << (name == current_module ? "  (current)" : "") << "\n";
      }
    } else if (trimmed == ":rules" ||
               ordlog::StartsWith(trimmed, ":rules ")) {
      const std::string name =
          trimmed == ":rules"
              ? current_module
              : std::string(ordlog::StripWhitespace(trimmed.substr(7)));
      const auto rules = kb.ModuleRules(name);
      if (!rules.ok()) {
        report(rules.status());
        continue;
      }
      for (const std::string& rule : *rules) std::cout << "  " << rule << "\n";
    } else if (ordlog::StartsWith(trimmed, ":assert ")) {
      report(kb.AddRuleText(current_module, trimmed.substr(8)));
    } else if (trimmed == ":facts") {
      const auto facts = kb.DerivableFacts(current_module);
      if (!facts.ok()) {
        report(facts.status());
        continue;
      }
      for (const std::string& fact : *facts) std::cout << "  " << fact << "\n";
    } else if (ordlog::StartsWith(trimmed, ":all ")) {
      const auto matches = kb.QueryAll(current_module, trimmed.substr(5));
      if (!matches.ok()) {
        report(matches.status());
        continue;
      }
      for (const std::string& match : *matches) {
        std::cout << "  " << match << "\n";
      }
    } else if (ordlog::StartsWith(trimmed, ":explain ")) {
      const auto explanation =
          kb.Explain(current_module, trimmed.substr(9));
      if (!explanation.ok()) {
        report(explanation.status());
        continue;
      }
      std::cout << *explanation;
    } else if (trimmed == ":stable") {
      const auto count = kb.CountStableModels(current_module);
      if (!count.ok()) {
        report(count.status());
        continue;
      }
      std::cout << "  " << *count << " stable model(s)\n";
    } else if (trimmed[0] == ':') {
      std::cout << "error: unknown command (:help for help)\n";
    } else {
      const auto truth = kb.Query(current_module, trimmed);
      if (!truth.ok()) {
        report(truth.status());
        continue;
      }
      std::cout << "  " << ordlog::TruthValueToString(*truth) << "\n";
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Options> options = ParseArgs(argc, argv);
  if (!options.has_value()) return Usage();

  std::ifstream in(options->file);
  if (!in) {
    std::cerr << "olp: cannot open " << options->file << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  ordlog::KnowledgeBase kb;
  const ordlog::Status status = kb.Load(buffer.str());
  if (!status.ok()) {
    std::cerr << "olp: " << status << "\n";
    return 1;
  }
  if (kb.program().NumComponents() == 0) {
    std::cerr << "olp: the program declares no components\n";
    return 1;
  }
  const std::string module =
      options->module.value_or(kb.program().component(0).name);
  if (!kb.HasModule(module)) {
    std::cerr << "olp: no module named '" << module << "'\n";
    return 1;
  }
  // Ground eagerly so order cycles and grounding budget problems surface
  // as clean diagnostics regardless of the requested actions.
  if (const auto ground = kb.ground(); !ground.ok()) {
    std::cerr << "olp: " << ground.status() << "\n";
    return 1;
  }

  if (options->repl) {
    return RunRepl(kb, module);
  }

  if (options->dump) {
    std::cout << ordlog::ToString(kb.program());
  }
  if (options->stats) {
    std::cout << ordlog::AnalyzeProgram(kb.program()).ToString(kb.program());
    if (const auto ground_program = kb.ground(); ground_program.ok()) {
      const auto module_id = kb.program().FindComponent(module);
      if (module_id.ok()) {
        std::cout << ordlog::AnalyzeConflicts(**ground_program, *module_id)
                         .ToString();
      }
    }
    ordlog::DependencyGraph graph(kb.program());
    if (const auto strata = graph.Stratification(); strata.has_value()) {
      std::cout << "stratified: " << (strata->empty() ? "no" : "yes")
                << "\n";
    } else {
      std::cout << "stratified: n/a (negated heads)\n";
    }
  }

  bool acted = options->dump || options->stats;
  for (const std::string& literal : options->queries) {
    const auto truth = kb.Query(module, literal);
    if (!truth.ok()) {
      std::cerr << "olp: " << truth.status() << "\n";
      return 1;
    }
    std::cout << literal << " = " << ordlog::TruthValueToString(*truth)
              << "\n";
    acted = true;
  }
  for (const std::string& pattern : options->patterns) {
    const auto matches = kb.QueryAll(module, pattern);
    if (!matches.ok()) {
      std::cerr << "olp: " << matches.status() << "\n";
      return 1;
    }
    std::cout << pattern << " matches " << matches->size() << ":\n";
    for (const std::string& match : *matches) {
      std::cout << "  " << match << "\n";
    }
    acted = true;
  }
  for (const std::string& literal : options->explains) {
    const auto explanation = kb.Explain(module, literal);
    if (!explanation.ok()) {
      std::cerr << "olp: " << explanation.status() << "\n";
      return 1;
    }
    std::cout << *explanation;
    acted = true;
  }
  if (options->stable) {
    const auto count = kb.CountStableModels(module);
    if (!count.ok()) {
      std::cerr << "olp: " << count.status() << "\n";
      return 1;
    }
    std::cout << "stable models of " << module << ": " << *count << "\n";
    acted = true;
  }
  if (options->facts || !acted) {
    const auto facts = kb.DerivableFacts(module);
    if (!facts.ok()) {
      std::cerr << "olp: " << facts.status() << "\n";
      return 1;
    }
    std::cout << "derivable in " << module << ":\n";
    for (const std::string& fact : *facts) {
      std::cout << "  " << fact << "\n";
    }
  }
  return 0;
}
