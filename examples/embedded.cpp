// Using the engine layers directly from C++ (no textual programs, no
// KnowledgeBase): fluent program construction, grounding, least model,
// stable models. This is the path a host application embedding ordlog as
// a library would take.

#include <iostream>

#include "core/enumerate.h"
#include "core/stable_solver.h"
#include "core/v_operator.h"
#include "ground/grounder.h"
#include "lang/builder.h"

int main() {
  // Example 5 of the paper, built fluently.
  ordlog::ProgramBuilder builder;
  builder.Component("c2").Fact("a").Fact("b").Fact("c");
  builder.Component("c1")
      .NegRule("a")
      .If("b")
      .If("c")
      .NegRule("b")
      .If("a")
      .NegRule("b")
      .IfNot("b");
  builder.Order("c1", "c2");

  auto program = builder.Build();
  if (!program.ok()) {
    std::cerr << "build failed: " << program.status() << "\n";
    return 1;
  }
  auto ground = ordlog::Grounder::Ground(*program);
  if (!ground.ok()) {
    std::cerr << "grounding failed: " << ground.status() << "\n";
    return 1;
  }
  const ordlog::ComponentId c1 = program->FindComponent("c1").value();

  // Skeptical semantics: the least model (Theorem 1b).
  const ordlog::Interpretation least =
      ordlog::VOperator(*ground, c1).LeastFixpoint();
  std::cout << "least model of c1: " << least.ToString(*ground) << "\n";

  // Preferred worlds: the stable models (Definition 9).
  ordlog::StableModelSolver solver(*ground, c1);
  const auto stable = solver.StableModels();
  if (!stable.ok()) {
    std::cerr << "solver failed: " << stable.status() << "\n";
    return 1;
  }
  std::cout << "stable models:";
  for (const ordlog::Interpretation& model : *stable) {
    std::cout << " " << model.ToString(*ground);
  }
  std::cout << "\n";
  return 0;
}
