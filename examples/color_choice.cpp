// Example 9 of the paper: negative rules as exceptions, and choice through
// multiple stable models. Demonstrates the 3-level semantics of negative
// programs and brave/cautious reasoning over stable models.

#include <iostream>

#include "core/enumerate.h"
#include "ground/grounder.h"
#include "parser/parser.h"
#include "transform/versions.h"

namespace {

// Prints every stable model of the (negative) program in `source`.
int ShowStableModels(const char* title, const char* source) {
  std::cout << title << "\n";
  auto parsed = ordlog::ParseProgram(source);
  if (!parsed.ok()) {
    std::cerr << "parse failed: " << parsed.status() << "\n";
    return 1;
  }
  // A negative program's meaning is the meaning of its 3-level version
  // 3V(C) in the exception component (paper Definition 10).
  auto version = ordlog::ThreeLevelVersion(parsed->component(0),
                                           parsed->shared_pool());
  if (!version.ok()) {
    std::cerr << "transform failed: " << version.status() << "\n";
    return 1;
  }
  auto ground = ordlog::Grounder::Ground(*version);
  if (!ground.ok()) {
    std::cerr << "grounding failed: " << ground.status() << "\n";
    return 1;
  }
  ordlog::BruteForceEnumerator enumerator(
      *ground, ordlog::kQueryComponent,
      ordlog::EnumerationOptions{.max_atoms = 18, .max_results = 64});
  const auto stable = enumerator.StableModels();
  if (!stable.ok()) {
    std::cerr << "enumeration failed: " << stable.status() << "\n";
    return 1;
  }
  for (const ordlog::Interpretation& model : *stable) {
    // Print only the `colored` literals; the rest is scaffolding.
    std::cout << "  stable model:";
    for (const ordlog::GroundLiteral& literal : model.Literals()) {
      const std::string text = ground->LiteralToString(literal);
      if (text.find("colored(") != std::string::npos &&
          text.find("ugly") == std::string::npos) {
        std::cout << " " << text;
      }
    }
    std::cout << "\n";
  }
  return 0;
}

}  // namespace

int main() {
  // Two equally good colors: the paper's "select exactly one" behaviour —
  // each stable model commits to one choice.
  int rc = ShowStableModels("Choice between red and green:", R"(
    component c {
      color(red).
      color(green).
      colored(X) :- color(X), -colored(Y), X != Y.
    }
  )");
  if (rc != 0) return rc;

  // The paper's full Example 9 with an ugly color. Under the formal
  // semantics the exception makes -colored(mud) certain, and that literal
  // then witnesses the rule body for *every* non-ugly color: the unique
  // stable model colors both red and green (the paper's informal gloss
  // "exactly one" does not match its own definitions here — see
  // EXPERIMENTS.md, row E9).
  std::cout << "\n";
  return ShowStableModels("With an ugly color (mud):", R"(
    component c {
      color(red).
      color(green).
      color(mud).
      ugly_color(mud).
      color(X) :- ugly_color(X).
      colored(X) :- color(X), -colored(Y), X != Y.
      -colored(X) :- ugly_color(X).
    }
  )");
}
