// kbctl: a minimal command-line client for kbserver (docs/SERVER.md).
//
//   kbctl --port=7341 create t1
//   kbctl --port=7341 mutate t1 add_rule animals "fly(X) :- bird(X)."
//   kbctl --port=7341 query t1 animals "fly(tweety)"
//
// Speaks one HTTP/1.0 request per invocation over the loopback interface
// and prints the response body (the JSON wire format) to stdout.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>

#include "trace/json.h"

namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --port=N <command>\n"
      "commands:\n"
      "  create <tenant>\n"
      "  drop <tenant>\n"
      "  list\n"
      "  query <tenant> <module> <literal> [mode]\n"
      "  explain <tenant> <module> <literal>\n"
      "  mutate <tenant> <op> <module> [text]\n"
      "    ops: add_fact, retract_fact, add_rule, add_module, add_isa\n"
      "    (add_module takes no text; add_isa's text is the parent)\n"
      "  facts <tenant> <module>\n"
      "  status <tenant>\n",
      argv0);
  return 2;
}

// Sends one request, prints the response body, returns 0 on HTTP 2xx.
int Send(int port, const std::string& method, const std::string& target,
         const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::perror("connect");
    ::close(fd);
    return 1;
  }
  std::ostringstream request;
  request << method << ' ' << target << " HTTP/1.0\r\n"
          << "Host: 127.0.0.1\r\n"
          << "Content-Length: " << body.size() << "\r\n"
          << "Connection: close\r\n\r\n"
          << body;
  const std::string wire = request.str();
  size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd, wire.data() + sent, wire.size() - sent, 0);
    if (n <= 0) {
      std::perror("send");
      ::close(fd);
      return 1;
    }
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buffer[16 * 1024];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0) {
      std::perror("recv");
      ::close(fd);
      return 1;
    }
    if (n == 0) break;
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);

  int code = 0;
  const size_t space = response.find(' ');
  if (space != std::string::npos) code = std::atoi(response.c_str() + space);
  const size_t blank = response.find("\r\n\r\n");
  const std::string payload =
      blank == std::string::npos ? response : response.substr(blank + 4);
  std::printf("%s\n", payload.c_str());
  return code >= 200 && code < 300 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  int port = 0;
  int arg = 1;
  for (; arg < argc; ++arg) {
    if (std::strncmp(argv[arg], "--port=", 7) == 0) {
      port = std::atoi(argv[arg] + 7);
    } else {
      break;
    }
  }
  if (port <= 0 || arg >= argc) return Usage(argv[0]);
  const std::string command = argv[arg++];
  const int remaining = argc - arg;

  using ordlog::JsonQuote;
  if (command == "list" && remaining == 0) {
    return Send(port, "GET", "/v1/admin/list", "");
  }
  if ((command == "create" || command == "drop") && remaining == 1) {
    return Send(port, "POST", std::string("/v1/admin/") + command,
                "{\"tenant\":" + JsonQuote(argv[arg]) + "}");
  }
  if (command == "query" && (remaining == 3 || remaining == 4)) {
    std::string body = "{\"module\":" + JsonQuote(argv[arg + 1]) +
                       ",\"literal\":" + JsonQuote(argv[arg + 2]);
    if (remaining == 4) body += ",\"mode\":" + JsonQuote(argv[arg + 3]);
    body += "}";
    return Send(port, "POST", std::string("/v1/") + argv[arg] + "/query",
                body);
  }
  if (command == "explain" && remaining == 3) {
    return Send(port, "POST", std::string("/v1/") + argv[arg] + "/explain",
                "{\"module\":" + JsonQuote(argv[arg + 1]) +
                    ",\"literal\":" + JsonQuote(argv[arg + 2]) + "}");
  }
  if (command == "mutate" && (remaining == 3 || remaining == 4)) {
    const char* text = remaining == 4 ? argv[arg + 3] : "";
    return Send(port, "POST", std::string("/v1/") + argv[arg] + "/mutate",
                "{\"ops\":[{\"op\":" + JsonQuote(argv[arg + 1]) +
                    ",\"module\":" + JsonQuote(argv[arg + 2]) +
                    ",\"text\":" + JsonQuote(text) + "}]}");
  }
  if (command == "facts" && remaining == 2) {
    return Send(port, "GET",
                std::string("/v1/") + argv[arg] + "/facts?module=" +
                    argv[arg + 1],
                "");
  }
  if (command == "status" && remaining == 1) {
    return Send(port, "GET", std::string("/v1/") + argv[arg] + "/status", "");
  }
  return Usage(argv[0]);
}
