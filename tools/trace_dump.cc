// trace_dump — structured tracing and provenance inspector for ordered
// logic programs.
//
// Usage:
//   trace_dump FILE [--module=NAME] [--why=LITERAL]... [--json]
//              [--events] [--strip-durations] [--stable] [--metrics]
//
// With no module given, the first declared component is used.
//
//   --why=LITERAL     derivation provenance for the literal: why it is
//                     true, false, or undefined in the module's least
//                     model. Human-readable by default; --json switches
//                     to the DerivationBuilder JSON schema (one line,
//                     deterministic — what the golden tests diff).
//   --events          stream every trace event (grounding, fixpoint
//                     rounds, rule statuses, solver search, query phases)
//                     to stdout as JSON lines, before the answers.
//   --strip-durations zero the duration_us field of streamed events so
//                     the event stream is byte-for-byte deterministic.
//   --stable          enumerate the module's stable models (Def. 9) and
//                     print each model's literals.
//   --metrics         print the query engine's metrics snapshot last.
//   --slow            record every engine query in the slow-query log
//                     (threshold 0) and dump the log as JSON last — the
//                     same document the /slowz statsz endpoint serves.
//                     With no --why, a count_models query is run so the
//                     log has at least one record.

#include <chrono>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "base/strings.h"
#include "core/stable_solver.h"
#include "kb/knowledge_base.h"
#include "runtime/query_engine.h"
#include "trace/sink.h"

namespace {

struct Options {
  std::string file;
  std::optional<std::string> module;
  std::vector<std::string> whys;
  bool json = false;
  bool events = false;
  bool strip_durations = false;
  bool stable = false;
  bool metrics = false;
  bool slow = false;
};

int Usage() {
  std::cerr << "usage: trace_dump FILE [--module=NAME] [--why=LITERAL]...\n"
            << "           [--json] [--events] [--strip-durations]\n"
            << "           [--stable] [--metrics] [--slow]\n";
  return 2;
}

std::optional<Options> ParseArgs(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (!ordlog::StartsWith(arg, "--")) {
      if (!options.file.empty()) return std::nullopt;
      options.file = arg;
    } else if (ordlog::StartsWith(arg, "--module=")) {
      options.module = arg.substr(9);
    } else if (ordlog::StartsWith(arg, "--why=")) {
      options.whys.push_back(arg.substr(6));
    } else if (arg == "--json") {
      options.json = true;
    } else if (arg == "--events") {
      options.events = true;
    } else if (arg == "--strip-durations") {
      options.strip_durations = true;
    } else if (arg == "--stable") {
      options.stable = true;
    } else if (arg == "--metrics") {
      options.metrics = true;
    } else if (arg == "--slow") {
      options.slow = true;
    } else {
      return std::nullopt;
    }
  }
  if (options.file.empty()) return std::nullopt;
  return options;
}

// Forwards events to `inner`, optionally zeroing wall times so that the
// streamed output is deterministic (for the golden tests).
class ForwardingSink : public ordlog::TraceSink {
 public:
  ForwardingSink(ordlog::TraceSink* inner, bool strip_durations)
      : inner_(inner), strip_durations_(strip_durations) {}

  void Emit(const ordlog::TraceEvent& event) override {
    ordlog::TraceEvent copy = event;
    if (strip_durations_) copy.duration_us = 0;
    inner_->Emit(copy);
  }

 private:
  ordlog::TraceSink* const inner_;
  const bool strip_durations_;
};

}  // namespace

int main(int argc, char** argv) {
  const std::optional<Options> options = ParseArgs(argc, argv);
  if (!options.has_value()) return Usage();

  std::ifstream in(options->file);
  if (!in) {
    std::cerr << "trace_dump: cannot open " << options->file << "\n";
    return 1;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();

  ordlog::JsonLinesSink json_sink(std::cout);
  ForwardingSink sink(&json_sink, options->strip_durations);
  ordlog::TraceSink* const trace = options->events ? &sink : nullptr;

  ordlog::GrounderOptions grounder_options;
  grounder_options.trace = trace;
  ordlog::KnowledgeBase kb(grounder_options);
  const ordlog::Status status = kb.Load(buffer.str());
  if (!status.ok()) {
    std::cerr << "trace_dump: " << status << "\n";
    return 1;
  }
  if (kb.program().NumComponents() == 0) {
    std::cerr << "trace_dump: the program declares no components\n";
    return 1;
  }
  const std::string module =
      options->module.value_or(kb.program().component(0).name);
  if (!kb.HasModule(module)) {
    std::cerr << "trace_dump: no module named '" << module << "'\n";
    return 1;
  }

  ordlog::QueryEngineOptions engine_options;
  engine_options.num_threads = 1;
  engine_options.trace = trace;
  if (options->slow) {
    // Threshold 0: every query qualifies, so the dump below always shows
    // the record schema (phase timings + captured trace events).
    engine_options.slow_query_threshold = std::chrono::microseconds(0);
  }
  ordlog::QueryEngine engine(kb, engine_options);

  for (const std::string& literal : options->whys) {
    ordlog::QueryRequest request;
    request.module = module;
    request.literal = literal;
    request.mode = ordlog::QueryMode::kSkeptical;
    request.explain = true;
    const ordlog::StatusOr<ordlog::QueryAnswer> answer =
        engine.Execute(std::move(request));
    if (!answer.ok()) {
      std::cerr << "trace_dump: " << answer.status() << "\n";
      return 1;
    }
    if (options->json) {
      std::cout << answer->explanation << "\n";
    } else {
      std::cout << "why " << literal << " in " << module << ": "
                << ordlog::TruthValueToString(answer->truth) << "\n";
      const ordlog::StatusOr<std::string> text = kb.Explain(module, literal);
      if (!text.ok()) {
        std::cerr << "trace_dump: " << text.status() << "\n";
        return 1;
      }
      std::cout << *text;
    }
  }

  if (options->stable) {
    const ordlog::StatusOr<const ordlog::GroundProgram*> ground = kb.ground();
    if (!ground.ok()) {
      std::cerr << "trace_dump: " << ground.status() << "\n";
      return 1;
    }
    const ordlog::StatusOr<ordlog::ComponentId> view =
        kb.program().FindComponent(module);
    if (!view.ok()) {
      std::cerr << "trace_dump: " << view.status() << "\n";
      return 1;
    }
    ordlog::StableSolverOptions solver_options;
    solver_options.trace = trace;
    ordlog::StableModelSolver solver(**ground, *view, solver_options);
    const ordlog::StatusOr<std::vector<ordlog::Interpretation>> models =
        solver.StableModels();
    if (!models.ok()) {
      std::cerr << "trace_dump: " << models.status() << "\n";
      return 1;
    }
    std::cout << "stable models of " << module << ": " << models->size()
              << "\n";
    for (size_t m = 0; m < models->size(); ++m) {
      std::cout << "model " << (m + 1) << ":";
      for (const ordlog::GroundLiteral& literal : (*models)[m].Literals()) {
        std::cout << " " << (*ground)->LiteralToString(literal);
      }
      std::cout << "\n";
    }
  }

  if (options->slow) {
    if (options->whys.empty()) {
      ordlog::QueryRequest request;
      request.module = module;
      request.mode = ordlog::QueryMode::kCountModels;
      const ordlog::StatusOr<ordlog::QueryAnswer> answer =
          engine.Execute(std::move(request));
      if (!answer.ok()) {
        std::cerr << "trace_dump: " << answer.status() << "\n";
        return 1;
      }
    }
    std::cout << engine.slow_query_log()->RenderJson() << "\n";
  }

  if (options->metrics) {
    std::cout << engine.Metrics().ToString() << "\n";
  }
  return 0;
}
