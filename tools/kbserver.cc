// kbserver: the multi-tenant ordered-logic KB service (docs/SERVER.md).
//
//   kbserver --data-dir=/var/lib/ordlog --port=7341
//
// Serves the /v1/ wire protocol plus the statsz surface on one loopback
// port. Runs until SIGINT/SIGTERM (or --serve-seconds for scripted runs).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "server/kb_server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  const size_t name_len = std::strlen(name);
  if (std::strncmp(arg, name, name_len) != 0 || arg[name_len] != '=') {
    return false;
  }
  *value = arg + name_len + 1;
  return true;
}

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port=N] [--data-dir=PATH] [--workers=N]\n"
      "          [--tenant-max-inflight=N] [--global-max-inflight=N]\n"
      "          [--snapshot-every=N] [--default-deadline-ms=N]\n"
      "          [--slow-query-threshold-us=N] [--serve-seconds=N]\n"
      "\n"
      "Serves the ordlog KB wire protocol (docs/SERVER.md) on 127.0.0.1.\n"
      "--port=0 (default) picks an ephemeral port, printed on stdout.\n"
      "Without --data-dir tenants are in-memory only (no WAL).\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  ordlog::KbServerOptions options;
  long serve_seconds = -1;
  long slow_query_threshold_us = -1;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (ParseFlag(argv[i], "--port", &value)) {
      options.port = std::atoi(value.c_str());
    } else if (ParseFlag(argv[i], "--data-dir", &value)) {
      options.registry.data_dir = value;
    } else if (ParseFlag(argv[i], "--workers", &value)) {
      options.num_workers = static_cast<size_t>(std::atol(value.c_str()));
    } else if (ParseFlag(argv[i], "--tenant-max-inflight", &value)) {
      options.admission.tenant_max_inflight =
          static_cast<size_t>(std::atol(value.c_str()));
    } else if (ParseFlag(argv[i], "--global-max-inflight", &value)) {
      options.admission.global_max_inflight =
          static_cast<size_t>(std::atol(value.c_str()));
    } else if (ParseFlag(argv[i], "--snapshot-every", &value)) {
      options.registry.snapshot_every =
          static_cast<size_t>(std::atol(value.c_str()));
    } else if (ParseFlag(argv[i], "--default-deadline-ms", &value)) {
      options.registry.default_deadline =
          std::chrono::milliseconds(std::atol(value.c_str()));
    } else if (ParseFlag(argv[i], "--slow-query-threshold-us", &value)) {
      slow_query_threshold_us = std::atol(value.c_str());
    } else if (ParseFlag(argv[i], "--serve-seconds", &value)) {
      serve_seconds = std::atol(value.c_str());
    } else {
      return Usage(argv[0]);
    }
  }
  if (slow_query_threshold_us >= 0) {
    options.registry.slow_query_threshold =
        std::chrono::microseconds(slow_query_threshold_us);
  }

  ordlog::KbServer server(std::move(options));
  const ordlog::Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "kbserver: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("kbserver listening on 127.0.0.1:%d\n", server.port());
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(serve_seconds);
  while (g_stop == 0) {
    if (serve_seconds >= 0 && std::chrono::steady_clock::now() >= deadline) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  return 0;
}
